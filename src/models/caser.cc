#include "models/caser.h"

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::models {
namespace {

SeqModelConfig CaserConfig(SeqModelConfig config) {
  config.use_positions = false;  // Order is captured by the convolutions.
  return config;
}

}  // namespace

Caser::Caser(SeqModelConfig config, Index num_h_filters, Index num_v_filters)
    : SequentialModelBase(CaserConfig(config)),
      num_h_filters_(num_h_filters),
      num_v_filters_(num_v_filters) {
  ISREC_CHECK_GT(num_h_filters, 0);
  ISREC_CHECK_GT(num_v_filters, 0);
}

void Caser::BuildModel(const data::Dataset& dataset) {
  user_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.embed_dim,
                                      rng_);
  RegisterModule("user_embedding", user_embedding_.get());
  for (size_t i = 0; i < heights_.size(); ++i) {
    ISREC_CHECK_LE(heights_[i], config_.seq_len);
    h_filters_.push_back(std::make_unique<nn::Linear>(
        heights_[i] * config_.embed_dim, num_h_filters_, rng_));
    RegisterModule("h_filter" + std::to_string(heights_[i]),
                   h_filters_.back().get());
  }
  v_filter_ = RegisterParameter(
      "v_filter",
      Tensor::Randn({num_v_filters_, config_.seq_len}, 0.1f, rng_));
  const Index fused_dim =
      static_cast<Index>(heights_.size()) * num_h_filters_ +
      num_v_filters_ * config_.embed_dim + config_.embed_dim;
  fc_ = std::make_unique<nn::Linear>(fused_dim, config_.embed_dim, rng_);
  fc_dropout_ = std::make_unique<nn::Dropout>(config_.dropout, rng_);
  RegisterModule("fc", fc_.get());
  RegisterModule("fc_dropout", fc_dropout_.get());
}

Tensor Caser::EncodeWindow(const data::SequenceBatch& batch) {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;
  const Index d = config_.embed_dim;
  ISREC_CHECK_EQ(t, config_.seq_len);

  Tensor x = EmbedInput(batch);  // [B, T, d]

  std::vector<Tensor> features;
  // Horizontal convolutions: slide a height-h window, max-pool over time.
  for (size_t hi = 0; hi < heights_.size(); ++hi) {
    const Index h = heights_[hi];
    std::vector<Tensor> responses;
    responses.reserve(t - h + 1);
    for (Index start = 0; start + h <= t; ++start) {
      Tensor window = Reshape(Slice(x, 1, start, start + h), {b, h * d});
      responses.push_back(
          Reshape(Relu(h_filters_[hi]->Forward(window)),
                  {b, 1, num_h_filters_}));
    }
    Tensor stacked = Concat(responses, 1);      // [B, T-h+1, F]
    features.push_back(ReduceMax(stacked, 1));  // [B, F]
  }
  // Vertical convolution: learned weighted sums over time.
  Tensor vertical = Reshape(BatchMatMul(v_filter_, x),
                            {b, num_v_filters_ * d});
  features.push_back(vertical);
  // User embedding (general preference path).
  features.push_back(user_embedding_->Forward(batch.users, {b}));

  Tensor fused = fc_dropout_->Forward(Concat(features, 1));
  return fc_->Forward(fused);  // [B, d]
}

Tensor Caser::Encode(const data::SequenceBatch& batch) {
  // The base scoring path reads the state at the final position; place
  // the window representation there.
  Tensor window = Reshape(EncodeWindow(batch),
                          {batch.batch_size, 1, config_.embed_dim});
  if (batch.seq_len == 1) return window;
  Tensor zeros = Tensor::Zeros(
      {batch.batch_size, batch.seq_len - 1, config_.embed_dim});
  return Concat({zeros, window}, 1);
}

Tensor Caser::ComputeLoss(const data::SequenceBatch& batch) {
  Tensor window = EncodeWindow(batch);  // [B, d]
  // Supervise only the final position's target (next item after the
  // window).
  std::vector<Index> targets(batch.batch_size, -1);
  for (Index row = 0; row < batch.batch_size; ++row) {
    targets[row] = batch.targets[(row + 1) * batch.seq_len - 1];
  }
  Tensor logprobs = LogSoftmax(OutputLogits(window));
  return NllLoss(logprobs, targets, /*ignore_index=*/-1);
}

}  // namespace isrec::models

#ifndef ISREC_MODELS_SEQ_BASE_H_
#define ISREC_MODELS_SEQ_BASE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/batch.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/recommender.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace isrec::models {

/// Shared hyperparameters of the neural sequential models (SASRec,
/// BERT4Rec, GRU4Rec, ISRec, ...).
struct SeqModelConfig {
  Index embed_dim = 32;   // d of the paper.
  Index num_layers = 2;   // Transformer / GCN depth.
  Index num_heads = 1;
  Index ffn_dim = 64;
  Index seq_len = 20;     // T, maximum sequence length.
  float dropout = 0.2f;

  /// Add summed concept embeddings to the input (Eq. 1). Used by ISRec
  /// and the "+concept" baseline variants of Table 5.
  bool use_concepts = false;
  /// Add learned positional embeddings (Eq. 1). Off for RNN models.
  bool use_positions = true;

  // Training.
  Index batch_size = 64;
  Index epochs = 15;
  float lr = 2e-3f;
  float weight_decay = 1e-6f;  // alpha of Eq. (14).
  float clip_norm = 5.0f;
  uint64_t seed = 1;
  bool verbose = false;
};

/// Base class for models that encode a padded item sequence into
/// per-position output states and train with the next-item NLL objective
/// (Eqs. 12-14). Subclasses provide Build() and Encode().
class SequentialModelBase : public eval::Recommender, public nn::Module {
 public:
  explicit SequentialModelBase(SeqModelConfig config);

  void Fit(const data::Dataset& dataset,
           const data::LeaveOneOutSplit& split) override;

  /// Instantiates every module for `dataset` WITHOUT training, so that
  /// parameters saved from an identically-configured model can be
  /// restored with nn::LoadParameters and the model scored immediately
  /// (the checkpoint path of serve::LoadCheckpoint). The dataset must
  /// outlive the model. Idempotent: a later Fit on the same dataset
  /// reuses the built modules.
  void Build(const data::Dataset& dataset);

  std::vector<float> Score(Index user, const std::vector<Index>& history,
                           const std::vector<Index>& candidates) override;

  /// Batched scoring with one Encode over all histories. Thread-safe for
  /// concurrent calls (inference only reads parameters; autograd mode is
  /// thread-local; the train/eval mode toggle is refcounted so the first
  /// in-flight call flips to eval and the last restores): this is what
  /// serve::ServingEngine and the parallel eval::EvaluateRanking rely on.
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<Index>& users,
      const std::vector<std::vector<Index>>& histories,
      const std::vector<std::vector<Index>>& candidate_lists) override;

  /// Inference seam for external scorers (the int8 quantized serving
  /// path wraps the fp32 encoder but scores the catalog itself):
  /// encodes histories to last-position states [B, d] with the same
  /// no-grad / refcounted-eval-mode discipline as ScoreBatch.
  /// Thread-safe for concurrent calls.
  Tensor EncodeStatesForServing(
      const std::vector<Index>& users,
      const std::vector<std::vector<Index>>& histories);

  /// Read-only view of the tied item embedding table ([vocab, d]; the
  /// first num_items rows score the catalog). For checkpoint-load
  /// quantization. Valid after Build/Fit.
  const Tensor& item_embedding_table() const;

  const SeqModelConfig& config() const { return config_; }

  /// Dataset bound by Fit/Build (nullptr before either). Checkpointing
  /// uses it to persist the vocabulary alongside the parameters.
  const data::Dataset* dataset() const { return dataset_; }

  /// Mean training loss of the last completed epoch (for tests/benches).
  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Trains one epoch and returns its mean batch loss. Exposed so tests
  /// can assert the loss decreases without running a full Fit.
  float TrainEpoch(data::SequenceBatcher& batcher);

 protected:
  /// Instantiates model-specific modules. Called once per Fit.
  virtual void BuildModel(const data::Dataset& dataset) = 0;

  /// Maps an embedded batch to output states [B, T, d]; state t is used
  /// to predict the item at position t's target.
  virtual Tensor Encode(const data::SequenceBatch& batch) = 0;

  /// Inference-time encoder: only the LAST position's output state
  /// [B, d] (histories are left-padded, so that is the state that scores
  /// the next item). Default slices Encode's full [B, T, d] output;
  /// models whose post-encoder stages are per-position (ISRec's intent
  /// pipeline) override this to skip the T-1 positions that are never
  /// scored — the serving hot path. Must produce bitwise-identical
  /// states to the default.
  virtual Tensor EncodeLastState(const data::SequenceBatch& batch);

  /// Scalar training loss for a batch; default = full-softmax NLL over
  /// all positions with valid targets.
  virtual Tensor ComputeLoss(const data::SequenceBatch& batch);

  /// Hook for inference-time history rewriting (BERT4Rec appends the
  /// mask token). Default: identity.
  virtual std::vector<std::vector<Index>> PrepareInferenceHistories(
      const std::vector<std::vector<Index>>& histories) const;

  /// Number of rows in the item embedding table; BERT4Rec adds a mask
  /// token row. Default: num_items.
  virtual Index ItemVocabularySize(const data::Dataset& dataset) const;

  /// Eq. (1): item embedding + positions (+ summed concept embeddings),
  /// followed by dropout. Returns [B, T, d].
  Tensor EmbedInput(const data::SequenceBatch& batch) const;

  /// Item logits for output states: states [N, d] -> [N, V] using the
  /// tied item embedding table (first num_items rows).
  Tensor OutputLogits(const Tensor& states_flat) const;

  const data::Dataset* dataset_ = nullptr;
  SeqModelConfig config_;
  Rng rng_;

  std::unique_ptr<nn::Embedding> item_embedding_;
  std::unique_ptr<nn::Embedding> position_embedding_;
  std::unique_ptr<nn::Embedding> concept_embedding_;
  std::unique_ptr<nn::Dropout> embed_dropout_;
  /// Item-concept incidence E as a sparse [V, K] matrix.
  std::optional<SparseMatrix> item_concepts_;

 private:
  void BuildCommon(const data::Dataset& dataset);

  std::unique_ptr<nn::Adam> optimizer_;
  float last_epoch_loss_ = 0.0f;
  bool built_ = false;

  // Concurrent-ScoreBatch bookkeeping: SetTraining writes module state
  // shared by every thread, so the toggle is refcounted under a mutex
  // instead of per-call (see ScoreBatch).
  std::mutex score_mode_mutex_;
  Index score_depth_ = 0;
  bool resume_training_ = false;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_SEQ_BASE_H_

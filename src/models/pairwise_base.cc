#include "models/pairwise_base.h"

#include <algorithm>

#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace isrec::models {

PairwiseModelBase::PairwiseModelBase(PairwiseConfig config)
    : config_(config), rng_(config.seed) {}

Tensor PairwiseModelBase::ComputeLoss(const std::vector<Index>& users,
                                      const std::vector<Index>& prevs,
                                      const std::vector<Index>& positives,
                                      const std::vector<Index>& negatives) {
  Tensor s_pos = ScoreTriples(users, prevs, positives);
  Tensor s_neg = ScoreTriples(users, prevs, negatives);
  // -log sigmoid(x) == softplus(-x).
  return Mean(Softplus(Neg(Sub(s_pos, s_neg))));
}

void PairwiseModelBase::Fit(const data::Dataset& dataset,
                            const data::LeaveOneOutSplit& split) {
  dataset_ = &dataset;
  if (!built_) {
    BuildModel(dataset);
    built_ = true;
  }
  SetTraining(true);
  sampler_ = std::make_unique<data::NegativeSampler>(dataset);

  // One example per train interaction, with its predecessor as context.
  examples_.clear();
  for (Index u = 0; u < split.num_users(); ++u) {
    const auto& seq = split.TrainSequence(u);
    for (size_t t = 0; t < seq.size(); ++t) {
      examples_.push_back({u, t > 0 ? seq[t - 1] : -1, seq[t]});
    }
  }
  ISREC_CHECK(!examples_.empty());

  nn::Adam optimizer(Parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
                     config_.weight_decay);
  for (Index epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(examples_);
    double total = 0.0;
    Index batches = 0;
    for (size_t start = 0; start < examples_.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          examples_.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<Index> users, prevs, positives, negatives;
      users.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        users.push_back(examples_[i].user);
        prevs.push_back(examples_[i].prev);
        positives.push_back(examples_[i].pos);
        negatives.push_back(sampler_->SampleOne(examples_[i].user, rng_));
      }
      optimizer.ZeroGrad();
      Tensor loss = ComputeLoss(users, prevs, positives, negatives);
      loss.Backward();
      optimizer.Step();
      total += loss.item();
      ++batches;
    }
    last_epoch_loss_ = static_cast<float>(total / std::max<Index>(1, batches));
    if (config_.verbose) {
      ISREC_LOG(Info) << name() << " epoch " << (epoch + 1) << "/"
                      << config_.epochs << " loss=" << last_epoch_loss_;
    }
  }
  SetTraining(false);
}

std::vector<float> PairwiseModelBase::Score(
    Index user, const std::vector<Index>& history,
    const std::vector<Index>& candidates) {
  ISREC_CHECK_MSG(dataset_ != nullptr, "Score called before Fit");
  NoGradGuard no_grad;
  const bool was_training = training();
  SetTraining(false);
  const Index prev = history.empty() ? -1 : history.back();
  std::vector<Index> users(candidates.size(), user);
  std::vector<Index> prevs(candidates.size(), prev);
  Tensor scores = ScoreTriples(users, prevs, candidates);
  SetTraining(was_training);
  return scores.ToVector();
}

}  // namespace isrec::models

#include "models/seq_base.h"

#include <algorithm>

#include "nn/optim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"

namespace isrec::models {

SequentialModelBase::SequentialModelBase(SeqModelConfig config)
    : config_(config), rng_(config.seed) {}

Index SequentialModelBase::ItemVocabularySize(
    const data::Dataset& dataset) const {
  return dataset.num_items;
}

void SequentialModelBase::BuildCommon(const data::Dataset& dataset) {
  item_embedding_ = std::make_unique<nn::Embedding>(
      ItemVocabularySize(dataset), config_.embed_dim, rng_);
  RegisterModule("item_embedding", item_embedding_.get());
  if (config_.use_positions) {
    position_embedding_ = std::make_unique<nn::Embedding>(
        config_.seq_len, config_.embed_dim, rng_);
    RegisterModule("position_embedding", position_embedding_.get());
  }
  if (config_.use_concepts) {
    concept_embedding_ = std::make_unique<nn::Embedding>(
        dataset.concepts.num_concepts(), config_.embed_dim, rng_);
    RegisterModule("concept_embedding", concept_embedding_.get());
    // Sparse E: one row per item (only real items, not the mask token).
    std::vector<Index> rows, cols;
    std::vector<float> values;
    for (Index item = 0; item < dataset.num_items; ++item) {
      for (Index c : dataset.item_concepts[item]) {
        rows.push_back(item);
        cols.push_back(c);
        values.push_back(1.0f);
      }
    }
    item_concepts_.emplace(ItemVocabularySize(dataset),
                           dataset.concepts.num_concepts(), rows, cols,
                           values);
  }
  embed_dropout_ = std::make_unique<nn::Dropout>(config_.dropout, rng_);
  RegisterModule("embed_dropout", embed_dropout_.get());
}

Tensor SequentialModelBase::EmbedInput(
    const data::SequenceBatch& batch) const {
  const Index b = batch.batch_size;
  const Index t = batch.seq_len;

  // Effective lookup table: item embedding plus (optionally) the summed
  // concept embeddings of each item, E * C (Eq. 1).
  Tensor table = item_embedding_->table();
  if (config_.use_concepts) {
    table = Add(table, SpMM(*item_concepts_, concept_embedding_->table()));
  }
  Tensor h = EmbeddingLookup(table, batch.items, {b, t});

  if (config_.use_positions) {
    // Broadcast positional embeddings [T, d] over the batch.
    h = Add(h, position_embedding_->table());
  }
  return embed_dropout_->Forward(h);
}

Tensor SequentialModelBase::OutputLogits(const Tensor& states_flat) const {
  // Tied weights: score against the item table. Only the first
  // num_items rows are items (a mask token row, if any, is excluded).
  Tensor table = item_embedding_->table();
  if (table.dim(0) != dataset_->num_items) {
    table = Slice(table, 0, 0, dataset_->num_items);
  }
  return BatchMatMul(states_flat, table, false, /*trans_b=*/true);
}

Tensor SequentialModelBase::ComputeLoss(const data::SequenceBatch& batch) {
  Tensor states = Encode(batch);  // [B, T, d]
  Tensor flat = Reshape(states, {batch.batch_size * batch.seq_len,
                                 config_.embed_dim});
  Tensor logprobs = LogSoftmax(OutputLogits(flat));
  return NllLoss(logprobs, batch.targets, /*ignore_index=*/-1);
}

float SequentialModelBase::TrainEpoch(data::SequenceBatcher& batcher) {
  ISREC_CHECK_MSG(built_, "TrainEpoch called before Fit/BuildModel");
  SetTraining(true);
  if (optimizer_ == nullptr) {
    optimizer_ = std::make_unique<nn::Adam>(Parameters(), config_.lr, 0.9f,
                                            0.999f, 1e-8f,
                                            config_.weight_decay);
  }
  batcher.Shuffle(rng_);

  // Per-phase telemetry (DESIGN.md "Observability"): forward / backward /
  // optimizer wall time per batch, plus loss and pre-clip gradient-norm
  // gauges. Everything here only reads clocks and writes obs instruments
  // — the computation is untouched, so losses are bitwise identical with
  // metrics on or off (pinned by obs_test).
  ISREC_TRACE_SPAN("train.epoch");
  const bool metrics = obs::MetricsEnabled();
  Stopwatch phase_sw;
  double forward_ms = 0.0, backward_ms = 0.0, optimizer_ms = 0.0;
  float grad_norm = 0.0f;

  double total = 0.0;
  for (Index i = 0; i < batcher.NumBatches(); ++i) {
    const data::SequenceBatch batch = batcher.GetBatch(i);
    optimizer_->ZeroGrad();
    if (metrics) phase_sw.Restart();
    Tensor loss;
    {
      ISREC_TRACE_SPAN("train.forward");
      loss = ComputeLoss(batch);
    }
    if (metrics) forward_ms = phase_sw.ElapsedMillis();
    if (metrics) phase_sw.Restart();
    {
      ISREC_TRACE_SPAN("train.backward");
      loss.Backward();
    }
    if (metrics) backward_ms = phase_sw.ElapsedMillis();
    if (metrics) phase_sw.Restart();
    {
      ISREC_TRACE_SPAN("train.optimizer");
      grad_norm = nn::ClipGradNorm(Parameters(), config_.clip_norm);
      optimizer_->Step();
    }
    if (metrics) optimizer_ms = phase_sw.ElapsedMillis();
    const float batch_loss = loss.item();
    total += batch_loss;
    if (metrics) {
      static obs::Histogram& forward_hist = obs::GetHistogram(
          "train.forward_ms", obs::LatencyBucketsMs());
      static obs::Histogram& backward_hist = obs::GetHistogram(
          "train.backward_ms", obs::LatencyBucketsMs());
      static obs::Histogram& optimizer_hist = obs::GetHistogram(
          "train.optimizer_ms", obs::LatencyBucketsMs());
      static obs::Counter& batches = obs::GetCounter("train.batches");
      static obs::Gauge& loss_gauge = obs::GetGauge("train.loss");
      static obs::Gauge& grad_gauge = obs::GetGauge("train.grad_norm");
      forward_hist.Observe(forward_ms);
      backward_hist.Observe(backward_ms);
      optimizer_hist.Observe(optimizer_ms);
      batches.Add(1);
      loss_gauge.Set(batch_loss);
      grad_gauge.Set(grad_norm);
    }
  }
  last_epoch_loss_ = static_cast<float>(total / batcher.NumBatches());
  if (metrics) {
    static obs::Counter& epochs = obs::GetCounter("train.epochs");
    static obs::Gauge& epoch_loss = obs::GetGauge("train.epoch_loss");
    epochs.Add(1);
    epoch_loss.Set(last_epoch_loss_);
  }
  return last_epoch_loss_;
}

void SequentialModelBase::Build(const data::Dataset& dataset) {
  dataset_ = &dataset;
  if (!built_) {
    BuildCommon(dataset);
    BuildModel(dataset);
    built_ = true;
  }
  SetTraining(false);
}

void SequentialModelBase::Fit(const data::Dataset& dataset,
                              const data::LeaveOneOutSplit& split) {
  dataset_ = &dataset;
  if (!built_) {
    BuildCommon(dataset);
    BuildModel(dataset);
    built_ = true;
  }
  data::SequenceBatcher batcher(split, config_.batch_size, config_.seq_len);
  for (Index epoch = 0; epoch < config_.epochs; ++epoch) {
    TrainEpoch(batcher);
    if (config_.verbose) {
      ISREC_LOG(Info) << name() << " epoch " << (epoch + 1) << "/"
                      << config_.epochs << " loss=" << last_epoch_loss_;
    }
  }
  SetTraining(false);
}

std::vector<std::vector<Index>>
SequentialModelBase::PrepareInferenceHistories(
    const std::vector<std::vector<Index>>& histories) const {
  return histories;
}

Tensor SequentialModelBase::EncodeLastState(
    const data::SequenceBatch& batch) {
  Tensor states = Encode(batch);  // [B, T, d]
  // The most recent element is always at the last position (left pad).
  return Reshape(Slice(states, 1, batch.seq_len - 1, batch.seq_len),
                 {batch.batch_size, config_.embed_dim});
}

std::vector<float> SequentialModelBase::Score(
    Index user, const std::vector<Index>& history,
    const std::vector<Index>& candidates) {
  return ScoreBatch({user}, {history}, {candidates})[0];
}

Tensor SequentialModelBase::EncodeStatesForServing(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories) {
  ISREC_CHECK_MSG(dataset_ != nullptr, "Score called before Fit");
  ISREC_CHECK_EQ(users.size(), histories.size());

  NoGradGuard no_grad;
  // Only toggle training mode when needed: in serving steady state the
  // model is permanently in eval mode and concurrent ScoreBatch calls
  // must not write any shared state. The toggle is refcounted so
  // concurrent calls that do arrive mid-training (parallel evaluation
  // between epochs) cannot flip the mode back on under a sibling's
  // forward pass. RAII, because ParallelFor rethrows shard exceptions:
  // the decrement must survive unwinding out of the forward pass, or the
  // model stays stuck in eval mode for every later call.
  struct ScoreModeGuard {
    SequentialModelBase* model;
    explicit ScoreModeGuard(SequentialModelBase* m) : model(m) {
      std::lock_guard<std::mutex> lock(model->score_mode_mutex_);
      if (model->score_depth_++ == 0) {
        model->resume_training_ = model->training();
        if (model->resume_training_) model->SetTraining(false);
      }
    }
    ~ScoreModeGuard() {
      std::lock_guard<std::mutex> lock(model->score_mode_mutex_);
      if (--model->score_depth_ == 0 && model->resume_training_) {
        model->SetTraining(true);
      }
    }
  } score_mode_guard(this);

  const auto prepared = PrepareInferenceHistories(histories);
  const data::SequenceBatch batch = data::SequenceBatcher::InferenceBatch(
      prepared, config_.seq_len, users);
  return EncodeLastState(batch);  // [B, d]
}

const Tensor& SequentialModelBase::item_embedding_table() const {
  ISREC_CHECK_MSG(item_embedding_ != nullptr,
                  "item_embedding_table called before Build");
  return item_embedding_->table();
}

std::vector<std::vector<float>> SequentialModelBase::ScoreBatch(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories,
    const std::vector<std::vector<Index>>& candidate_lists) {
  ISREC_CHECK_EQ(users.size(), candidate_lists.size());

  // The encode seam installs its own mode guard; scoring below only
  // reads the table, so it needs no guard of its own.
  NoGradGuard no_grad;
  Tensor last = EncodeStatesForServing(users, histories);  // [B, d]

  std::vector<std::vector<float>> result;
  result.reserve(users.size());
  const Tensor& table = item_embedding_->table();

  // Serving fast path: when every request ranks the same candidates
  // (e.g. the full catalog), one [B, d] x [C, d]^T matmul scores the
  // whole batch instead of B per-request table gathers.
  const bool shared_candidates =
      users.size() > 1 &&
      std::all_of(candidate_lists.begin() + 1, candidate_lists.end(),
                  [&](const std::vector<Index>& c) {
                    return c == candidate_lists[0];
                  });
  if (shared_candidates) {
    Tensor cand = IndexSelect(table, candidate_lists[0]);        // [C, d]
    Tensor scores = BatchMatMul(last, cand, false, true);        // [B, C]
    const float* data = scores.data();
    const size_t c = candidate_lists[0].size();
    for (size_t i = 0; i < users.size(); ++i) {
      result.emplace_back(data + i * c, data + (i + 1) * c);
    }
  } else {
    // Mixed-candidate traffic: one padded [B, C_max, d] gather plus a
    // single batched matmul, instead of B Slice+IndexSelect+BatchMatMul
    // dispatches. Short lists pad with item 0; the padded scores are
    // computed and dropped. Each kept score is the same d-term dot
    // product as the per-request path, so results are bitwise identical.
    const Index b_n = static_cast<Index>(users.size());
    Index c_max = 0;
    for (const std::vector<Index>& c : candidate_lists) {
      c_max = std::max(c_max, static_cast<Index>(c.size()));
    }
    std::vector<Index> flat;
    flat.reserve(static_cast<size_t>(b_n) * c_max);
    for (const std::vector<Index>& c : candidate_lists) {
      flat.insert(flat.end(), c.begin(), c.end());
      flat.resize(flat.size() + (c_max - static_cast<Index>(c.size())), 0);
    }
    Tensor cand = Reshape(IndexSelect(table, flat),
                          {b_n, c_max, config_.embed_dim});  // [B, C_max, d]
    Tensor states = Reshape(last, {b_n, 1, config_.embed_dim});
    Tensor scores = BatchMatMul(states, cand, false, true);  // [B, 1, C_max]
    const float* data = scores.data();
    for (Index i = 0; i < b_n; ++i) {
      const size_t c = candidate_lists[i].size();
      result.emplace_back(data + i * c_max, data + i * c_max + c);
    }
  }
  return result;
}

}  // namespace isrec::models

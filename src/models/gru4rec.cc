#include "models/gru4rec.h"

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::models {

namespace {

SeqModelConfig WithoutPositions(SeqModelConfig config) {
  config.use_positions = false;  // RNNs encode order recurrently.
  return config;
}

}  // namespace

Gru4Rec::Gru4Rec(SeqModelConfig config)
    : SequentialModelBase(WithoutPositions(config)) {}

void Gru4Rec::BuildModel(const data::Dataset&) {
  gru_ = std::make_unique<nn::Gru>(config_.embed_dim, config_.embed_dim,
                                   rng_);
  output_proj_ = std::make_unique<nn::Linear>(config_.embed_dim,
                                              config_.embed_dim, rng_);
  RegisterModule("gru", gru_.get());
  RegisterModule("output_proj", output_proj_.get());
}

Tensor Gru4Rec::Encode(const data::SequenceBatch& batch) {
  Tensor h = EmbedInput(batch);
  Tensor hidden = gru_->Forward(h, batch.valid);
  return output_proj_->Forward(hidden);
}

Gru4RecPlus::Gru4RecPlus(SeqModelConfig config, Index num_negatives,
                         float bpr_reg)
    : Gru4Rec(config), num_negatives_(num_negatives), bpr_reg_(bpr_reg) {
  ISREC_CHECK_GT(num_negatives, 0);
}

Tensor Gru4RecPlus::ComputeLoss(const data::SequenceBatch& batch) {
  // BPR-max over sampled negatives:
  //   L = -log sum_j softmax(s_j) * sigmoid(s_pos - s_j)
  //       + reg * sum_j softmax(s_j) * s_j^2
  Tensor states = Encode(batch);  // [B, T, d]
  const Index n = batch.batch_size * batch.seq_len;
  Tensor flat = Reshape(states, {n, config_.embed_dim});

  // Keep only positions with real targets.
  std::vector<Index> kept_rows;
  std::vector<Index> positives;
  for (Index i = 0; i < n; ++i) {
    if (batch.targets[i] >= 0) {
      kept_rows.push_back(i);
      positives.push_back(batch.targets[i]);
    }
  }
  ISREC_CHECK(!kept_rows.empty());
  const Index p = static_cast<Index>(kept_rows.size());
  Tensor h = IndexSelect(flat, kept_rows);  // [P, d]

  // Positive scores.
  Tensor pos_emb =
      EmbeddingLookup(item_embedding_->table(), positives, {p});  // [P, d]
  Tensor s_pos = Sum(Mul(h, pos_emb), -1, /*keepdim=*/true);  // [P, 1]

  // Sampled negative scores (uniform over the catalogue; collisions with
  // the positive are rare and act as label smoothing).
  std::vector<Index> negatives(p * num_negatives_);
  for (auto& id : negatives) id = rng_.NextInt(dataset_->num_items);
  Tensor neg_emb = EmbeddingLookup(item_embedding_->table(), negatives,
                                   {p, num_negatives_});  // [P, k, d]
  Tensor s_neg = Reshape(
      BatchMatMul(neg_emb, Reshape(h, {p, config_.embed_dim, 1})),
      {p, num_negatives_});  // [P, k]

  Tensor w = Softmax(s_neg);  // [P, k]
  Tensor bpr = Sum(Mul(w, Sigmoid(Sub(s_pos, s_neg))), -1);  // [P]
  Tensor loss = Mean(Neg(Log(AddScalar(bpr, 1e-8f))));
  Tensor reg = Mean(Sum(Mul(w, Mul(s_neg, s_neg)), -1));
  return Add(loss, MulScalar(reg, bpr_reg_));
}

}  // namespace isrec::models

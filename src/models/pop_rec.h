#ifndef ISREC_MODELS_POP_REC_H_
#define ISREC_MODELS_POP_REC_H_

#include <string>
#include <vector>

#include "eval/recommender.h"

namespace isrec::models {

/// PopRec: ranks items by global interaction count in the training data.
/// The weakest baseline of Table 2, and a sanity anchor for the harness.
class PopRec : public eval::Recommender {
 public:
  std::string name() const override { return "PopRec"; }

  void Fit(const data::Dataset& dataset,
           const data::LeaveOneOutSplit& split) override;

  std::vector<float> Score(Index user, const std::vector<Index>& history,
                           const std::vector<Index>& candidates) override;

  /// Training popularity of one item (0 before Fit).
  Index popularity(Index item) const;

 private:
  std::vector<Index> counts_;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_POP_REC_H_

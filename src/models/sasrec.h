#ifndef ISREC_MODELS_SASREC_H_
#define ISREC_MODELS_SASREC_H_

#include <memory>
#include <string>

#include "models/seq_base.h"
#include "nn/attention.h"

namespace isrec::models {

/// SASRec (Kang & McAuley 2018): unidirectional (causal) transformer
/// trained to predict the next item at every position. With
/// `config.use_concepts = true` this becomes the "SASRec + concept"
/// variant of Table 5.
class SasRec : public SequentialModelBase {
 public:
  explicit SasRec(SeqModelConfig config);

  std::string name() const override {
    return config().use_concepts ? "SASRec+concept" : "SASRec";
  }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor Encode(const data::SequenceBatch& batch) override;

  /// Serving fast path: only the final transformer layer's last
  /// position is ever scored, so skip the other T-1 queries there.
  Tensor EncodeLastState(const data::SequenceBatch& batch) override;

 private:
  std::unique_ptr<nn::TransformerEncoder> encoder_;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_SASREC_H_

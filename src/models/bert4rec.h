#ifndef ISREC_MODELS_BERT4REC_H_
#define ISREC_MODELS_BERT4REC_H_

#include <memory>
#include <string>

#include "models/seq_base.h"
#include "nn/attention.h"

namespace isrec::models {

/// BERT4Rec (Sun et al. 2019): bidirectional transformer trained with a
/// Cloze objective — random positions are replaced by a [mask] token and
/// the model reconstructs them. At inference a mask token is appended to
/// the history and the model predicts the item at that position. With
/// `config.use_concepts = true` this is "BERT4Rec + concept" (Table 5).
class Bert4Rec : public SequentialModelBase {
 public:
  explicit Bert4Rec(SeqModelConfig config, float mask_prob = 0.3f);

  std::string name() const override {
    return config().use_concepts ? "BERT4Rec+concept" : "BERT4Rec";
  }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor Encode(const data::SequenceBatch& batch) override;
  Tensor ComputeLoss(const data::SequenceBatch& batch) override;
  std::vector<std::vector<Index>> PrepareInferenceHistories(
      const std::vector<std::vector<Index>>& histories) const override;
  Index ItemVocabularySize(const data::Dataset& dataset) const override;

 private:
  float mask_prob_;
  Index mask_token_ = -1;  // Set at build time (== num_items).
  std::unique_ptr<nn::TransformerEncoder> encoder_;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_BERT4REC_H_

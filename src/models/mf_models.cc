#include "models/mf_models.h"

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::models {
namespace {

// Row-wise dot product of two [N, d] tensors -> [N].
Tensor RowDot(const Tensor& a, const Tensor& b) {
  return Sum(Mul(a, b), -1);
}

}  // namespace

// ---------------------------------------------------------------------
// BPR-MF

BprMf::BprMf(PairwiseConfig config) : PairwiseModelBase(config) {}

void BprMf::BuildModel(const data::Dataset& dataset) {
  user_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.dim, rng_);
  item_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  RegisterModule("user_embedding", user_embedding_.get());
  RegisterModule("item_embedding", item_embedding_.get());
}

Tensor BprMf::ScoreTriples(const std::vector<Index>& users,
                           const std::vector<Index>& prevs,
                           const std::vector<Index>& items) {
  (void)prevs;  // Non-sequential model.
  const Index n = static_cast<Index>(users.size());
  Tensor u = user_embedding_->Forward(users, {n});
  Tensor v = item_embedding_->Forward(items, {n});
  return RowDot(u, v);
}

// ---------------------------------------------------------------------
// NCF

Ncf::Ncf(PairwiseConfig config) : PairwiseModelBase(config) {}

void Ncf::BuildModel(const data::Dataset& dataset) {
  user_gmf_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.dim, rng_);
  item_gmf_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  user_mlp_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.dim, rng_);
  item_mlp_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<Index>{2 * config_.dim, config_.dim, config_.dim / 2},
      rng_);
  head_ = std::make_unique<nn::Linear>(config_.dim + config_.dim / 2, 1,
                                       rng_);
  RegisterModule("user_gmf", user_gmf_.get());
  RegisterModule("item_gmf", item_gmf_.get());
  RegisterModule("user_mlp", user_mlp_.get());
  RegisterModule("item_mlp", item_mlp_.get());
  RegisterModule("mlp", mlp_.get());
  RegisterModule("head", head_.get());
}

Tensor Ncf::ScoreTriples(const std::vector<Index>& users,
                         const std::vector<Index>& prevs,
                         const std::vector<Index>& items) {
  (void)prevs;
  const Index n = static_cast<Index>(users.size());
  Tensor gmf = Mul(user_gmf_->Forward(users, {n}),
                   item_gmf_->Forward(items, {n}));  // [N, d]
  Tensor mlp_in = Concat(
      {user_mlp_->Forward(users, {n}), item_mlp_->Forward(items, {n})}, 1);
  Tensor mlp_out = Relu(mlp_->Forward(mlp_in));  // [N, d/2]
  Tensor fused = Concat({gmf, mlp_out}, 1);
  return Reshape(head_->Forward(fused), {n});
}

Tensor Ncf::ComputeLoss(const std::vector<Index>& users,
                        const std::vector<Index>& prevs,
                        const std::vector<Index>& positives,
                        const std::vector<Index>& negatives) {
  // Pointwise binary cross-entropy:
  //   -log sigmoid(s_pos) - log(1 - sigmoid(s_neg))
  Tensor s_pos = ScoreTriples(users, prevs, positives);
  Tensor s_neg = ScoreTriples(users, prevs, negatives);
  return Add(Mean(Softplus(Neg(s_pos))), Mean(Softplus(s_neg)));
}

// ---------------------------------------------------------------------
// FPMC

Fpmc::Fpmc(PairwiseConfig config) : PairwiseModelBase(config) {}

void Fpmc::BuildModel(const data::Dataset& dataset) {
  user_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.dim, rng_);
  item_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  prev_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  next_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  RegisterModule("user_embedding", user_embedding_.get());
  RegisterModule("item_embedding", item_embedding_.get());
  RegisterModule("prev_embedding", prev_embedding_.get());
  RegisterModule("next_embedding", next_embedding_.get());
}

Tensor Fpmc::ScoreTriples(const std::vector<Index>& users,
                          const std::vector<Index>& prevs,
                          const std::vector<Index>& items) {
  const Index n = static_cast<Index>(users.size());
  Tensor mf = RowDot(user_embedding_->Forward(users, {n}),
                     item_embedding_->Forward(items, {n}));
  // prev == -1 yields a zero embedding row, i.e. no Markov term.
  Tensor mc = RowDot(prev_embedding_->Forward(prevs, {n}),
                     next_embedding_->Forward(items, {n}));
  return Add(mf, mc);
}

// ---------------------------------------------------------------------
// DGCF (lightweight)

Dgcf::Dgcf(PairwiseConfig config, Index num_factors)
    : PairwiseModelBase(config), num_factors_(num_factors) {
  ISREC_CHECK_GT(num_factors, 0);
  ISREC_CHECK_EQ(config_.dim % num_factors, 0);
}

void Dgcf::BuildModel(const data::Dataset& dataset) {
  user_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_users, config_.dim, rng_);
  item_embedding_ =
      std::make_unique<nn::Embedding>(dataset.num_items, config_.dim, rng_);
  RegisterModule("user_embedding", user_embedding_.get());
  RegisterModule("item_embedding", item_embedding_.get());
}

Tensor Dgcf::ScoreTriples(const std::vector<Index>& users,
                          const std::vector<Index>& prevs,
                          const std::vector<Index>& items) {
  (void)prevs;
  const Index n = static_cast<Index>(users.size());
  const Index chunk = config_.dim / num_factors_;
  // [N, F, d/F]: per-intent channels.
  Tensor u = Reshape(user_embedding_->Forward(users, {n}),
                     {n, num_factors_, chunk});
  Tensor v = Reshape(item_embedding_->Forward(items, {n}),
                     {n, num_factors_, chunk});
  // Normalized per-channel affinity, summed over channels.
  Tensor dots = Sum(Mul(u, v), -1);                      // [N, F]
  Tensor norms = Mul(NormLastDim(u), NormLastDim(v));    // [N, F]
  return Sum(Div(dots, AddScalar(norms, 1e-8f)), -1);    // [N]
}

}  // namespace isrec::models

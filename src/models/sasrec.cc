#include "models/sasrec.h"

#include "tensor/ops.h"

namespace isrec::models {

SasRec::SasRec(SeqModelConfig config) : SequentialModelBase(config) {}

void SasRec::BuildModel(const data::Dataset&) {
  encoder_ = std::make_unique<nn::TransformerEncoder>(
      config_.num_layers, config_.embed_dim, config_.num_heads,
      config_.ffn_dim, config_.dropout, rng_);
  RegisterModule("encoder", encoder_.get());
}

Tensor SasRec::Encode(const data::SequenceBatch& batch) {
  Tensor h = EmbedInput(batch);
  Tensor mask = nn::MakeAttentionMask(batch.batch_size, batch.seq_len,
                                      batch.valid, /*causal=*/true);
  return encoder_->Forward(h, mask);
}

Tensor SasRec::EncodeLastState(const data::SequenceBatch& batch) {
  Tensor h = EmbedInput(batch);
  Tensor mask = nn::MakeAttentionMask(batch.batch_size, batch.seq_len,
                                      batch.valid, /*causal=*/true);
  return Reshape(encoder_->ForwardLastState(h, mask),
                 {batch.batch_size, config_.embed_dim});
}

}  // namespace isrec::models

#include "models/pop_rec.h"

#include "utils/check.h"

namespace isrec::models {

void PopRec::Fit(const data::Dataset& dataset,
                 const data::LeaveOneOutSplit& split) {
  counts_.assign(dataset.num_items, 0);
  for (Index u = 0; u < split.num_users(); ++u) {
    for (Index item : split.TrainSequence(u)) counts_[item]++;
  }
}

std::vector<float> PopRec::Score(Index, const std::vector<Index>&,
                                 const std::vector<Index>& candidates) {
  ISREC_CHECK_MSG(!counts_.empty(), "Score called before Fit");
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (Index item : candidates) {
    scores.push_back(static_cast<float>(popularity(item)));
  }
  return scores;
}

Index PopRec::popularity(Index item) const {
  ISREC_CHECK_GE(item, 0);
  ISREC_CHECK_LT(item, static_cast<Index>(counts_.size()));
  return counts_[item];
}

}  // namespace isrec::models

#ifndef ISREC_MODELS_CASER_H_
#define ISREC_MODELS_CASER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/batch.h"
#include "models/seq_base.h"
#include "nn/layers.h"

namespace isrec::models {

/// Caser (Tang & Wang 2018): convolutional sequence embedding. The last
/// L items form an L x d "image"; horizontal filters (heights 2..4)
/// capture union-level patterns, vertical filters capture point-level
/// patterns; their max-pooled features are fused with a user embedding
/// and projected back to item space.
///
/// Unlike the per-position transformer/GRU models, Caser predicts only
/// from the full window, so its loss supervises the final position.
class Caser : public SequentialModelBase {
 public:
  /// `num_h_filters` horizontal filters per height, `num_v_filters`
  /// vertical filters.
  explicit Caser(SeqModelConfig config, Index num_h_filters = 8,
                 Index num_v_filters = 2);

  std::string name() const override { return "Caser"; }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor Encode(const data::SequenceBatch& batch) override;
  Tensor ComputeLoss(const data::SequenceBatch& batch) override;

 private:
  /// Window representation [B, d] from the embedded batch.
  Tensor EncodeWindow(const data::SequenceBatch& batch);

  Index num_h_filters_, num_v_filters_;
  std::vector<Index> heights_ = {2, 3, 4};
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::vector<std::unique_ptr<nn::Linear>> h_filters_;
  Tensor v_filter_;  // [num_v_filters, T]
  std::unique_ptr<nn::Linear> fc_;
  std::unique_ptr<nn::Dropout> fc_dropout_;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_CASER_H_

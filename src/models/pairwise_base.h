#ifndef ISREC_MODELS_PAIRWISE_BASE_H_
#define ISREC_MODELS_PAIRWISE_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/recommender.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace isrec::models {

/// Hyperparameters of the matrix-factorization-family baselines
/// (BPR-MF, NCF, FPMC, DGCF).
struct PairwiseConfig {
  Index dim = 32;
  Index epochs = 20;
  Index batch_size = 256;
  float lr = 5e-3f;
  float weight_decay = 1e-6f;
  uint64_t seed = 2;
  bool verbose = false;
};

/// Base for models scored per (user, previous item, candidate item)
/// triple and trained on pairwise/pointwise ranking of observed vs
/// sampled items. `prev` is -1 for models without Markov context.
class PairwiseModelBase : public eval::Recommender, public nn::Module {
 public:
  explicit PairwiseModelBase(PairwiseConfig config);

  void Fit(const data::Dataset& dataset,
           const data::LeaveOneOutSplit& split) override;

  std::vector<float> Score(Index user, const std::vector<Index>& history,
                           const std::vector<Index>& candidates) override;

  const PairwiseConfig& config() const { return config_; }
  float last_epoch_loss() const { return last_epoch_loss_; }

 protected:
  virtual void BuildModel(const data::Dataset& dataset) = 0;

  /// Scores for parallel triples (users[i], prevs[i], items[i]).
  /// Returns a [N] tensor. `prevs[i]` may be -1 (no context).
  virtual Tensor ScoreTriples(const std::vector<Index>& users,
                              const std::vector<Index>& prevs,
                              const std::vector<Index>& items) = 0;

  /// Training loss given matched positive/negative triples. Default:
  /// BPR, -log sigmoid(s_pos - s_neg), via the stable softplus form.
  virtual Tensor ComputeLoss(const std::vector<Index>& users,
                             const std::vector<Index>& prevs,
                             const std::vector<Index>& positives,
                             const std::vector<Index>& negatives);

  const data::Dataset* dataset_ = nullptr;
  PairwiseConfig config_;
  Rng rng_;

 private:
  struct Example {
    Index user;
    Index prev;
    Index pos;
  };

  std::vector<Example> examples_;
  std::unique_ptr<data::NegativeSampler> sampler_;
  float last_epoch_loss_ = 0.0f;
  bool built_ = false;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_PAIRWISE_BASE_H_

#ifndef ISREC_MODELS_MF_MODELS_H_
#define ISREC_MODELS_MF_MODELS_H_

#include <memory>
#include <string>

#include "models/pairwise_base.h"
#include "nn/layers.h"

namespace isrec::models {

/// BPR-MF (Rendle et al. 2012): matrix factorization trained with
/// Bayesian personalized ranking. score(u, i) = <U_u, V_i>.
class BprMf : public PairwiseModelBase {
 public:
  explicit BprMf(PairwiseConfig config);

  std::string name() const override { return "BPR-MF"; }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor ScoreTriples(const std::vector<Index>& users,
                      const std::vector<Index>& prevs,
                      const std::vector<Index>& items) override;

 private:
  std::unique_ptr<nn::Embedding> user_embedding_, item_embedding_;
};

/// NCF / NeuMF (He et al. 2017): a GMF path (elementwise product) plus
/// an MLP over concatenated user/item embeddings, fused by a linear
/// head, trained pointwise with the binary cross-entropy objective.
class Ncf : public PairwiseModelBase {
 public:
  explicit Ncf(PairwiseConfig config);

  std::string name() const override { return "NCF"; }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor ScoreTriples(const std::vector<Index>& users,
                      const std::vector<Index>& prevs,
                      const std::vector<Index>& items) override;
  Tensor ComputeLoss(const std::vector<Index>& users,
                     const std::vector<Index>& prevs,
                     const std::vector<Index>& positives,
                     const std::vector<Index>& negatives) override;

 private:
  std::unique_ptr<nn::Embedding> user_gmf_, item_gmf_, user_mlp_, item_mlp_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unique_ptr<nn::Linear> head_;
};

/// FPMC (Rendle et al. 2010): matrix factorization fused with a
/// first-order Markov chain:
///   score(u, prev, i) = <U_u, V_i> + <L_prev, M_i>.
class Fpmc : public PairwiseModelBase {
 public:
  explicit Fpmc(PairwiseConfig config);

  std::string name() const override { return "FPMC"; }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor ScoreTriples(const std::vector<Index>& users,
                      const std::vector<Index>& prevs,
                      const std::vector<Index>& items) override;

 private:
  std::unique_ptr<nn::Embedding> user_embedding_, item_embedding_;
  std::unique_ptr<nn::Embedding> prev_embedding_, next_embedding_;
};

/// DGCF-style disentangled collaborative filtering (Wang et al. 2020),
/// simplified: embeddings are split into `num_factors` intent channels;
/// each channel is L2-normalized before the dot product so no single
/// intent dominates, and the per-intent affinities are summed.
/// (The full DGCF also propagates over the interaction graph and adds a
/// distance-correlation independence loss; this lightweight variant
/// keeps the intent-channel structure that defines the baseline.)
class Dgcf : public PairwiseModelBase {
 public:
  explicit Dgcf(PairwiseConfig config, Index num_factors = 4);

  std::string name() const override { return "DGCF"; }

 protected:
  void BuildModel(const data::Dataset& dataset) override;
  Tensor ScoreTriples(const std::vector<Index>& users,
                      const std::vector<Index>& prevs,
                      const std::vector<Index>& items) override;

 private:
  Index num_factors_;
  std::unique_ptr<nn::Embedding> user_embedding_, item_embedding_;
};

}  // namespace isrec::models

#endif  // ISREC_MODELS_MF_MODELS_H_

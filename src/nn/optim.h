#ifndef ISREC_NN_OPTIM_H_
#define ISREC_NN_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace isrec::nn {

/// Base class for first-order optimizers over a fixed parameter list.
/// Parameters whose gradient buffer was never materialized in the current
/// step are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored in the
  /// parameters.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_, momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with decoupled L2 regularization. With
/// `weight_decay` > 0 this realizes the alpha * ||Theta||^2 term of
/// Eq. (14) without adding the penalty to the loss graph.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm);

}  // namespace isrec::nn

#endif  // ISREC_NN_OPTIM_H_

#include "nn/gru.h"

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::nn {

GruCell::GruCell(Index input_dim, Index hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim) {
  input_proj_ = std::make_unique<Linear>(input_dim, 3 * hidden_dim, rng);
  hidden_proj_ = std::make_unique<Linear>(hidden_dim, 3 * hidden_dim, rng,
                                          /*bias=*/false);
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("hidden_proj", hidden_proj_.get());
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  const Index hd = hidden_dim_;
  Tensor gi = input_proj_->Forward(x);   // [B, 3H]
  Tensor gh = hidden_proj_->Forward(h);  // [B, 3H]

  Tensor r = Sigmoid(Add(Slice(gi, 1, 0, hd), Slice(gh, 1, 0, hd)));
  Tensor z = Sigmoid(Add(Slice(gi, 1, hd, 2 * hd), Slice(gh, 1, hd, 2 * hd)));
  Tensor n = Tanh(Add(Slice(gi, 1, 2 * hd, 3 * hd),
                      Mul(r, Slice(gh, 1, 2 * hd, 3 * hd))));
  // h' = (1 - z) * n + z * h
  return Add(Mul(Sub(Tensor::Ones(z.shape()), z), n), Mul(z, h));
}

Gru::Gru(Index input_dim, Index hidden_dim, Rng& rng) {
  cell_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  RegisterModule("cell", cell_.get());
}

Tensor Gru::Forward(const Tensor& x, const std::vector<bool>& valid) const {
  ISREC_CHECK_EQ(x.ndim(), 3);
  const Index batch = x.dim(0);
  const Index seq = x.dim(1);
  ISREC_CHECK_EQ(static_cast<Index>(valid.size()), batch * seq);

  Tensor h = Tensor::Zeros({batch, cell_->hidden_dim()});
  std::vector<Tensor> outputs;
  outputs.reserve(seq);
  for (Index t = 0; t < seq; ++t) {
    Tensor xt = Reshape(Slice(x, 1, t, t + 1), {batch, x.dim(2)});
    Tensor candidate = cell_->Forward(xt, h);
    // Per-row gate: keep previous hidden state on pad steps.
    Tensor keep = Tensor::Zeros({batch, 1});
    for (Index b = 0; b < batch; ++b) {
      keep.data()[b] = valid[b * seq + t] ? 0.0f : 1.0f;
    }
    Tensor pass = Tensor::Full({batch, 1}, 1.0f);
    h = Add(Mul(Sub(pass, keep), candidate), Mul(keep, h));
    outputs.push_back(Reshape(h, {batch, 1, cell_->hidden_dim()}));
  }
  return Concat(outputs, 1);
}

}  // namespace isrec::nn

#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(Index dim, Index num_heads,
                                               float dropout_p, Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  ISREC_CHECK_EQ(dim % num_heads, 0);
  w_q_ = std::make_unique<Linear>(dim, dim, rng, /*bias=*/false);
  w_k_ = std::make_unique<Linear>(dim, dim, rng, /*bias=*/false);
  w_v_ = std::make_unique<Linear>(dim, dim, rng, /*bias=*/false);
  w_o_ = std::make_unique<Linear>(dim, dim, rng, /*bias=*/false);
  dropout_ = std::make_unique<Dropout>(dropout_p, rng);
  RegisterModule("w_q", w_q_.get());
  RegisterModule("w_k", w_k_.get());
  RegisterModule("w_v", w_v_.get());
  RegisterModule("w_o", w_o_.get());
  RegisterModule("dropout", dropout_.get());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& mask) const {
  ISREC_CHECK_EQ(x.ndim(), 3);
  const Index batch = x.dim(0);
  const Index seq = x.dim(1);
  ISREC_CHECK_EQ(x.dim(2), dim_);

  auto split_heads = [&](const Tensor& t) {
    // [B, T, D] -> [B, H, T, dh]
    return Transpose(Reshape(t, {batch, seq, num_heads_, head_dim_}), 1, 2);
  };
  Tensor q = split_heads(w_q_->Forward(x));
  Tensor k = split_heads(w_k_->Forward(x));
  Tensor v = split_heads(w_v_->Forward(x));

  // [B, H, T, T]
  Tensor scores = MulScalar(BatchMatMul(q, k, false, /*trans_b=*/true),
                            1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (mask.defined()) {
    // Broadcast [B, 1, T, T] over heads.
    scores = Add(scores, Reshape(mask, {batch, 1, seq, seq}));
  }
  Tensor weights = dropout_->Forward(Softmax(scores));
  Tensor context = BatchMatMul(weights, v);  // [B, H, T, dh]
  context = Reshape(Transpose(context, 1, 2), {batch, seq, dim_});
  return w_o_->Forward(context);
}

Tensor MultiHeadSelfAttention::ForwardLastQuery(const Tensor& x,
                                                const Tensor& mask_last) const {
  ISREC_CHECK_EQ(x.ndim(), 3);
  const Index batch = x.dim(0);
  const Index seq = x.dim(1);
  ISREC_CHECK_EQ(x.dim(2), dim_);

  auto split_heads = [&](const Tensor& t, Index t_len) {
    // [B, t_len, D] -> [B, H, t_len, dh]
    return Transpose(Reshape(t, {batch, t_len, num_heads_, head_dim_}), 1, 2);
  };
  Tensor q = split_heads(w_q_->Forward(Slice(x, 1, seq - 1, seq)), 1);
  Tensor k = split_heads(w_k_->Forward(x), seq);
  Tensor v = split_heads(w_v_->Forward(x), seq);

  // [B, H, 1, T]
  Tensor scores = MulScalar(BatchMatMul(q, k, false, /*trans_b=*/true),
                            1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (mask_last.defined()) {
    scores = Add(scores, Reshape(mask_last, {batch, 1, 1, seq}));
  }
  Tensor weights = dropout_->Forward(Softmax(scores));
  Tensor context = BatchMatMul(weights, v);  // [B, H, 1, dh]
  context = Reshape(Transpose(context, 1, 2), {batch, 1, dim_});
  return w_o_->Forward(context);
}

TransformerBlock::TransformerBlock(Index dim, Index num_heads, Index ffn_dim,
                                   float dropout_p, Rng& rng) {
  attention_ =
      std::make_unique<MultiHeadSelfAttention>(dim, num_heads, dropout_p, rng);
  ffn1_ = std::make_unique<Linear>(dim, ffn_dim, rng);
  ffn2_ = std::make_unique<Linear>(ffn_dim, dim, rng);
  norm1_ = std::make_unique<LayerNorm>(dim);
  norm2_ = std::make_unique<LayerNorm>(dim);
  dropout_ = std::make_unique<Dropout>(dropout_p, rng);
  RegisterModule("attention", attention_.get());
  RegisterModule("ffn1", ffn1_.get());
  RegisterModule("ffn2", ffn2_.get());
  RegisterModule("norm1", norm1_.get());
  RegisterModule("norm2", norm2_.get());
  RegisterModule("dropout", dropout_.get());
}

Tensor TransformerBlock::Forward(const Tensor& x, const Tensor& mask) const {
  Tensor attended = dropout_->Forward(attention_->Forward(x, mask));
  Tensor s = norm1_->Forward(Add(x, attended));
  Tensor ffn = dropout_->Forward(ffn2_->Forward(Relu(ffn1_->Forward(s))));
  return norm2_->Forward(Add(s, ffn));
}

Tensor TransformerBlock::ForwardLastQuery(const Tensor& x,
                                          const Tensor& mask_last) const {
  const Index seq = x.dim(1);
  Tensor attended =
      dropout_->Forward(attention_->ForwardLastQuery(x, mask_last));
  Tensor s = norm1_->Forward(Add(Slice(x, 1, seq - 1, seq), attended));
  Tensor ffn = dropout_->Forward(ffn2_->Forward(Relu(ffn1_->Forward(s))));
  return norm2_->Forward(Add(s, ffn));
}

TransformerEncoder::TransformerEncoder(Index num_layers, Index dim,
                                       Index num_heads, Index ffn_dim,
                                       float dropout_p, Rng& rng) {
  ISREC_CHECK_GT(num_layers, 0);
  for (Index l = 0; l < num_layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        dim, num_heads, ffn_dim, dropout_p, rng));
    RegisterModule("layer" + std::to_string(l), blocks_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x, const Tensor& mask) const {
  Tensor h = x;
  for (const auto& block : blocks_) h = block->Forward(h, mask);
  return h;
}

Tensor TransformerEncoder::ForwardLastState(const Tensor& x,
                                            const Tensor& mask) const {
  Tensor h = x;
  for (size_t l = 0; l + 1 < blocks_.size(); ++l) {
    h = blocks_[l]->Forward(h, mask);
  }
  const Index seq = x.dim(1);
  Tensor mask_last =
      mask.defined() ? Slice(mask, 1, seq - 1, seq) : mask;  // [B, 1, T]
  return blocks_.back()->ForwardLastQuery(h, mask_last);
}

Tensor MakeAttentionMask(Index batch, Index seq_len,
                         const std::vector<bool>& valid, bool causal) {
  ISREC_CHECK_EQ(static_cast<Index>(valid.size()), batch * seq_len);
  constexpr float kBlocked = -1e9f;
  Tensor mask = Tensor::Zeros({batch, seq_len, seq_len});
  float* m = mask.data();
  for (Index b = 0; b < batch; ++b) {
    for (Index i = 0; i < seq_len; ++i) {
      float* row = m + (b * seq_len + i) * seq_len;
      for (Index j = 0; j < seq_len; ++j) {
        const bool blocked = (causal && j > i) || !valid[b * seq_len + j];
        row[j] = blocked ? kBlocked : 0.0f;
      }
    }
  }
  return mask;
}

}  // namespace isrec::nn

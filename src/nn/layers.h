#ifndef ISREC_NN_LAYERS_H_
#define ISREC_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace isrec::nn {

/// Affine transform y = x W + b over the last axis.
/// Input [..., in], output [..., out]. Xavier-uniform initialized.
class Linear : public Module {
 public:
  Linear(Index in_features, Index out_features, Rng& rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  Index in_features() const { return in_features_; }
  Index out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }

 private:
  Index in_features_, out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Lookup table of `count` embeddings of size `dim`. Negative indices
/// produce zero rows (padding) and receive no gradient.
class Embedding : public Module {
 public:
  Embedding(Index count, Index dim, Rng& rng, float init_scale = 0.02f);

  /// `indices` are flat row-major wrt `index_shape`; output is
  /// index_shape + [dim].
  Tensor Forward(const std::vector<Index>& indices, Shape index_shape) const;

  /// The full table [count, dim] (e.g. for scoring against all items).
  const Tensor& table() const { return table_; }

  Index count() const { return count_; }
  Index dim() const { return dim_; }

 private:
  Index count_, dim_;
  Tensor table_;
};

/// Layer normalization over the last axis with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(Index dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  float eps_;
  Tensor gamma_, beta_;
};

/// Inverted dropout; identity in eval mode.
class Dropout : public Module {
 public:
  /// `rng` must outlive the module.
  Dropout(float p, Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  float p_;
  Rng* rng_;
};

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear.
/// `dims` = {in, hidden..., out}; ReLU after every layer except the last.
class Mlp : public Module {
 public:
  Mlp(const std::vector<Index>& dims, Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// One GCN layer (Eq. 10): H' = act(A_norm H W). The normalized adjacency
/// is supplied per call so one layer can serve graphs of the same size.
class GcnLayer : public Module {
 public:
  /// With `identity_init` (requires in == out), the weight starts as
  /// I + noise so the layer initially computes pure message passing
  /// A_norm * H — a useful inductive bias when the graph structure
  /// itself carries the signal (ISRec's intent transition).
  GcnLayer(Index in_features, Index out_features, Rng& rng,
           bool relu = true, bool identity_init = false);

  /// x is [..., K, in]; returns [..., K, out].
  Tensor Forward(const SparseMatrix& adj_norm, const Tensor& x) const;

  /// Concept-major variant for batched inference: x is [K, S, in] (S
  /// samples side by side), returns [K, S, out]. Runs ONE SpMM over all
  /// S * in columns instead of one per sample; each CSR row accumulates
  /// its neighbours in the same order as Forward, and the linear + relu
  /// act per (k, s) row, so results are bitwise equal to Forward on the
  /// sample-major layout (up to the axis permutation).
  Tensor ForwardConceptMajor(const SparseMatrix& adj_norm,
                             const Tensor& x) const;

 private:
  bool relu_;
  std::unique_ptr<Linear> linear_;
};

}  // namespace isrec::nn

#endif  // ISREC_NN_LAYERS_H_

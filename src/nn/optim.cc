#include "nn/optim.h"

#include <cmath>

#include "utils/check.h"

namespace isrec::nn {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    ISREC_CHECK(p.defined());
    ISREC_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr, float momentum)
    : Optimizer(std::move(parameters)), lr_(lr), momentum_(momentum) {
  velocity_.resize(parameters_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    if (!p.has_grad()) continue;
    float* data = p.data();
    const float* grad = p.grad();
    const Index n = p.numel();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[i];
      if (vel.size() != static_cast<size_t>(n)) vel.assign(n, 0.0f);
      for (Index j = 0; j < n; ++j) {
        vel[j] = momentum_ * vel[j] + grad[j];
        data[j] -= lr_ * vel[j];
      }
    } else {
      for (Index j = 0; j < n; ++j) data[j] -= lr_ * grad[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    if (!p.has_grad()) continue;
    float* data = p.data();
    const float* grad = p.grad();
    const Index n = p.numel();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.size() != static_cast<size_t>(n)) {
      m.assign(n, 0.0f);
      v.assign(n, 0.0f);
    }
    for (Index j = 0; j < n; ++j) {
      // Decoupled weight decay (L2 term of Eq. 14).
      const float g = grad[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm) {
  ISREC_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const Tensor& p : parameters) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (Index j = 0; j < p.numel(); ++j) total_sq += g[j] * g[j];
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (const Tensor& p : parameters) {
      if (!p.has_grad()) continue;
      float* g = const_cast<Tensor&>(p).grad();
      for (Index j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace isrec::nn

#ifndef ISREC_NN_MODULE_H_
#define ISREC_NN_MODULE_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "utils/status.h"

namespace isrec::nn {

/// Base class for neural-network building blocks.
///
/// A Module owns its parameters (Tensors with requires_grad) and may own
/// child modules. Parameters() flattens the whole subtree, which is what
/// optimizers consume. SetTraining() toggles dropout-style behaviour for
/// the subtree.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters in this module and its children (depth-first).
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical names like "encoder.layer0.w_q".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of scalar parameters.
  Index NumParameters() const;

  /// Toggles training mode (affects dropout etc.) for the subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes every parameter gradient in the subtree.
  void ZeroGrad();

 protected:
  Module() = default;

  /// Registers a parameter; returns it for storage in the subclass.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  /// Registers a child (non-owning; the subclass keeps ownership, e.g. in
  /// a member or a vector of unique_ptr).
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// Serializes all parameters of `module` to a flat binary file. The file
/// records a simple header plus each parameter's name, shape, and data.
void SaveParameters(const Module& module, const std::string& path);

/// Restores parameters saved with SaveParameters. The module must have an
/// identical parameter structure (names and shapes). CHECK-fails on
/// mismatch; returns false only if the file cannot be opened.
bool LoadParameters(Module& module, const std::string& path);

/// Stream variants: write/read the same parameter blob at the current
/// position of an already-open file, so a larger container format (e.g.
/// serve::SaveCheckpoint) can embed the parameters as one section.
void SaveParameters(const Module& module, std::FILE* file);
void LoadParameters(Module& module, std::FILE* file);

/// As LoadParameters(module, file), but reports a truncated or malformed
/// blob as a typed kModelError status (magic mismatch, truncation,
/// name/shape mismatch) instead of CHECK-failing, so callers holding
/// untrusted files (e.g. serve::ServableModel::Load) can reject them
/// gracefully. On failure the module's parameters may be partially
/// overwritten.
Status TryLoadParameters(Module& module, std::FILE* file);

}  // namespace isrec::nn

#endif  // ISREC_NN_MODULE_H_

#include "nn/layers.h"

#include <cmath>

#include "tensor/ops.h"
#include "utils/check.h"

namespace isrec::nn {

Linear::Linear(Index in_features, Index out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  ISREC_CHECK_GT(in_features, 0);
  ISREC_CHECK_GT(out_features, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      "weight",
      Tensor::RandUniform({in_features, out_features}, -bound, bound, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  ISREC_CHECK_EQ(x.dim(-1), in_features_);
  Tensor y;
  if (x.ndim() == 2) {
    y = MatMul(x, weight_);
  } else {
    // Flatten leading dims, multiply, restore.
    Shape out_shape = x.shape();
    out_shape.back() = out_features_;
    y = Reshape(MatMul(Reshape(x, {-1, in_features_}), weight_), out_shape);
  }
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

Embedding::Embedding(Index count, Index dim, Rng& rng, float init_scale)
    : count_(count), dim_(dim) {
  ISREC_CHECK_GT(count, 0);
  ISREC_CHECK_GT(dim, 0);
  table_ = RegisterParameter("table",
                             Tensor::Randn({count, dim}, init_scale, rng));
}

Tensor Embedding::Forward(const std::vector<Index>& indices,
                          Shape index_shape) const {
  return EmbeddingLookup(table_, indices, std::move(index_shape));
}

LayerNorm::LayerNorm(Index dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_, eps_);
}

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  ISREC_CHECK_GE(p, 0.0f);
  ISREC_CHECK_LT(p, 1.0f);
}

Tensor Dropout::Forward(const Tensor& x) const {
  return DropoutOp(x, p_, training(), *rng_);
}

Mlp::Mlp(const std::vector<Index>& dims, Rng& rng) {
  ISREC_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

GcnLayer::GcnLayer(Index in_features, Index out_features, Rng& rng, bool relu,
                   bool identity_init)
    : relu_(relu) {
  linear_ = std::make_unique<Linear>(in_features, out_features, rng,
                                     /*bias=*/false);
  RegisterModule("linear", linear_.get());
  if (identity_init) {
    ISREC_CHECK_EQ(in_features, out_features);
    float* w = const_cast<Tensor&>(linear_->weight()).data();
    for (Index i = 0; i < in_features; ++i) {
      for (Index j = 0; j < out_features; ++j) {
        w[i * out_features + j] =
            (i == j ? 1.0f : 0.0f) + 0.02f * rng.NextGaussian();
      }
    }
  }
}

Tensor GcnLayer::Forward(const SparseMatrix& adj_norm, const Tensor& x) const {
  Tensor h = SpMM(adj_norm, x);
  h = linear_->Forward(h);
  return relu_ ? Relu(h) : h;
}

Tensor GcnLayer::ForwardConceptMajor(const SparseMatrix& adj_norm,
                                     const Tensor& x) const {
  ISREC_CHECK_EQ(x.ndim(), 3);
  const Index k = x.dim(0);
  const Index s = x.dim(1);
  const Index d = x.dim(2);
  Tensor h = SpMM(adj_norm, Reshape(x, {k, s * d}));
  h = linear_->Forward(Reshape(h, {adj_norm.num_rows(), s, d}));
  return relu_ ? Relu(h) : h;
}

}  // namespace isrec::nn

#include "nn/module.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "utils/check.h"

namespace isrec::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> result;
  for (const auto& [name, tensor] : parameters_) result.push_back(tensor);
  for (const auto& [name, child] : children_) {
    for (const Tensor& t : child->Parameters()) result.push_back(t);
  }
  return result;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> result;
  for (const auto& entry : parameters_) result.push_back(entry);
  for (const auto& [name, child] : children_) {
    for (const auto& [sub_name, tensor] : child->NamedParameters()) {
      result.emplace_back(name + "." + sub_name, tensor);
    }
  }
  return result;
}

Index Module::NumParameters() const {
  Index total = 0;
  for (const Tensor& t : Parameters()) total += t.numel();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor tensor) {
  ISREC_CHECK(tensor.defined());
  tensor.set_requires_grad(true);
  parameters_.emplace_back(name, tensor);
  return tensor;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  ISREC_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

namespace {
constexpr uint32_t kMagic = 0x49535243;  // "ISRC"
}  // namespace

void SaveParameters(const Module& module, std::FILE* f) {
  ISREC_CHECK(f != nullptr);
  const auto params = module.NamedParameters();
  const uint32_t magic = kMagic;
  const uint64_t count = params.size();
  std::fwrite(&magic, sizeof(magic), 1, f);
  std::fwrite(&count, sizeof(count), 1, f);
  for (const auto& [name, tensor] : params) {
    const uint64_t name_len = name.size();
    std::fwrite(&name_len, sizeof(name_len), 1, f);
    std::fwrite(name.data(), 1, name.size(), f);
    const uint64_t rank = tensor.shape().size();
    std::fwrite(&rank, sizeof(rank), 1, f);
    for (Index d : tensor.shape()) {
      const int64_t dim = d;
      std::fwrite(&dim, sizeof(dim), 1, f);
    }
    std::fwrite(tensor.data(), sizeof(float), tensor.numel(), f);
  }
}

void SaveParameters(const Module& module, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ISREC_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  SaveParameters(module, f);
  std::fclose(f);
}

Status TryLoadParameters(Module& module, std::FILE* f) {
  ISREC_CHECK(f != nullptr);
  auto fail = [](const std::string& message) {
    return Status::ModelError(message);
  };
  uint32_t magic = 0;
  uint64_t count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1u) {
    return fail("truncated parameter blob (missing magic)");
  }
  if (magic != kMagic) return fail("not an ISRec parameter blob");
  if (std::fread(&count, sizeof(count), 1, f) != 1u) {
    return fail("truncated parameter blob (missing count)");
  }

  auto params = module.NamedParameters();
  if (count != params.size()) {
    return fail("parameter count mismatch: file has " +
                std::to_string(count) + ", module has " +
                std::to_string(params.size()));
  }
  for (auto& [expected_name, tensor] : params) {
    uint64_t name_len = 0;
    if (std::fread(&name_len, sizeof(name_len), 1, f) != 1u ||
        name_len > (1u << 20)) {
      return fail("truncated parameter blob (bad name length)");
    }
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f) != name_len) {
      return fail("truncated parameter blob (short name)");
    }
    if (name != expected_name) {
      return fail("parameter order mismatch: " + name + " vs " +
                  expected_name);
    }
    uint64_t rank = 0;
    if (std::fread(&rank, sizeof(rank), 1, f) != 1u || rank > 16) {
      return fail("truncated parameter blob (bad rank for " + name + ")");
    }
    Shape shape(rank);
    for (uint64_t i = 0; i < rank; ++i) {
      int64_t dim = 0;
      if (std::fread(&dim, sizeof(dim), 1, f) != 1u) {
        return fail("truncated parameter blob (short shape for " + name +
                    ")");
      }
      shape[i] = dim;
    }
    if (shape != tensor.shape()) {
      return fail("shape mismatch for " + name + ": file " +
                  ShapeToString(shape) + " vs " +
                  ShapeToString(tensor.shape()));
    }
    if (std::fread(tensor.data(), sizeof(float), tensor.numel(), f) !=
        static_cast<size_t>(tensor.numel())) {
      return fail("truncated parameter blob (short data for " + name + ")");
    }
  }
  return Status::Ok();
}

void LoadParameters(Module& module, std::FILE* f) {
  const Status status = TryLoadParameters(module, f);
  ISREC_CHECK_MSG(status.ok(), status.message());
}

bool LoadParameters(Module& module, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  LoadParameters(module, f);
  std::fclose(f);
  return true;
}

}  // namespace isrec::nn

#ifndef ISREC_NN_GRU_H_
#define ISREC_NN_GRU_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace isrec::nn {

/// Single gated recurrent unit cell (Cho et al. 2014), the substrate of
/// the GRU4Rec / GRU4Rec+ baselines.
class GruCell : public Module {
 public:
  GruCell(Index input_dim, Index hidden_dim, Rng& rng);

  /// x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  Index hidden_dim() const { return hidden_dim_; }

 private:
  Index hidden_dim_;
  // Fused gate projections: [.., 3H] ordered (reset, update, candidate).
  std::unique_ptr<Linear> input_proj_, hidden_proj_;
};

/// Unrolled GRU over a padded sequence.
class Gru : public Module {
 public:
  Gru(Index input_dim, Index hidden_dim, Rng& rng);

  /// x: [B, T, input_dim]. `valid[b * T + t]` marks real (non-pad)
  /// steps; the hidden state is carried through pad steps unchanged so
  /// left-padded sequences work. Returns all hidden states [B, T, H].
  Tensor Forward(const Tensor& x, const std::vector<bool>& valid) const;

 private:
  std::unique_ptr<GruCell> cell_;
};

}  // namespace isrec::nn

#endif  // ISREC_NN_GRU_H_

#ifndef ISREC_NN_ATTENTION_H_
#define ISREC_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace isrec::nn {

/// Multi-head scaled dot-product self-attention (Eq. 3 of the paper).
///
/// The attention mask is passed per call as an additive float tensor of
/// shape [B, T, T] (0 = attend, large negative = blocked); it is
/// broadcast over heads. Use MakeCausalMask / MakePaddingMask below.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(Index dim, Index num_heads, float dropout_p,
                         Rng& rng);

  /// x: [B, T, dim]; mask: [B, T, T] additive. Returns [B, T, dim].
  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  /// Serving fast path: attends with only the last position as query
  /// (keys/values still cover the full sequence). mask_last is the last
  /// query row of the full mask, [B, 1, T]. Returns [B, 1, dim],
  /// bitwise equal to row T-1 of Forward(x, mask): every op involved
  /// (projections, scores, softmax, context) is row-independent.
  Tensor ForwardLastQuery(const Tensor& x, const Tensor& mask_last) const;

 private:
  Index dim_, num_heads_, head_dim_;
  std::unique_ptr<Linear> w_q_, w_k_, w_v_, w_o_;
  std::unique_ptr<Dropout> dropout_;
};

/// Transformer block: post-LN residual attention + position-wise FFN
/// (Eqs. 3-4): H^{l+1} = LN(S + FFN(S)), S = LN(X + SA(X)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(Index dim, Index num_heads, Index ffn_dim,
                   float dropout_p, Rng& rng);

  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  /// Last-query variant of Forward: returns [B, 1, dim], bitwise equal
  /// to position T-1 of the full block output (attention, residuals,
  /// LayerNorm and the FFN are all per-position).
  Tensor ForwardLastQuery(const Tensor& x, const Tensor& mask_last) const;

 private:
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<Linear> ffn1_, ffn2_;
  std::unique_ptr<LayerNorm> norm1_, norm2_;
  std::unique_ptr<Dropout> dropout_;
};

/// Stack of TransformerBlocks.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(Index num_layers, Index dim, Index num_heads,
                     Index ffn_dim, float dropout_p, Rng& rng);

  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  /// Serving fast path: all blocks but the last run over the full
  /// sequence (later layers need their outputs as keys/values); the
  /// final block computes only the last query position. Returns
  /// [B, 1, dim], bitwise equal to slicing position T-1 out of
  /// Forward(x, mask).
  Tensor ForwardLastState(const Tensor& x, const Tensor& mask) const;

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

/// Additive attention mask [B, T, T] combining causality (query i may
/// only see keys j <= i) with key validity (`valid[b * T + j]`). When
/// `causal` is false only validity is applied (BERT4Rec-style).
Tensor MakeAttentionMask(Index batch, Index seq_len,
                         const std::vector<bool>& valid, bool causal);

}  // namespace isrec::nn

#endif  // ISREC_NN_ATTENTION_H_

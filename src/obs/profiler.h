#ifndef ISREC_OBS_PROFILER_H_
#define ISREC_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace isrec::obs {

/// Sampling wall-clock profiler (DESIGN.md "Profiling plane"). A
/// background sampler thread periodically snapshots every thread's
/// span-frame stack — pushed/popped by the existing ISREC_TRACE_SPAN
/// macro family, so samples fold into span-labeled stacks without
/// libunwind or signal handlers — and aggregates them into
/// (stack, count) pairs exportable as collapsed/folded-stack text
/// (flamegraph.pl-compatible) and a JSON summary.
///
/// What a sample means: the sampler wakes `hz` times a second and, for
/// each live thread that has ever recorded a span, reads its current
/// frame stack (outermost-first). A thread inside nested spans
/// "serve.batch_assembly" > "serve.score_batch" contributes one count to
/// the folded stack "serve.batch_assembly;serve.score_batch"; a thread
/// with no open span contributes to "(idle)". Counts are therefore
/// proportional to wall time spent under each span path.
///
/// Overhead contract (same as tracing, obs/trace.h): with the profiler
/// stopped, a span costs the shared single relaxed-atomic branch in
/// ScopedSpan; running, a span adds two relaxed/release atomic stores
/// (push) and one (pop) to a thread-local fixed array. Frame reads and
/// writes are all atomics, so the sampler never blocks a sampled thread
/// and the whole plane is TSan-clean. Profiled code computes bitwise
/// identical results (pinned by profiler_test).

/// Frames kept per thread; deeper nesting still balances push/pop but
/// the sampler labels the path "...;(truncated)".
inline constexpr int kProfileMaxDepth = 16;

/// True while the sampler thread runs (spans push frames).
bool ProfilerRunning();

/// Starts the sampler at `hz` samples/second (clamped to [1, 10000]).
/// Idempotent: a second Start keeps the running sampler and its rate.
void StartProfiler(int hz = 499);

/// Stops and joins the sampler. Aggregated stacks are kept (a later
/// Start resumes accumulation); Idempotent.
void StopProfiler();

/// Discards every aggregated stack and zeroes the sample counters.
void ClearProfile();

/// One aggregated call path: frames outermost-first, and how many
/// samples landed there.
struct ProfileStack {
  std::vector<const char*> frames;
  uint64_t count = 0;
};

/// Copy of the aggregated profile. `samples` counts every thread
/// observation (idle included); stacks are sorted by count descending,
/// then lexicographically, so equal inputs render identically.
struct ProfileSnapshot {
  uint64_t samples = 0;
  uint64_t idle_samples = 0;
  int hz = 0;
  std::vector<ProfileStack> stacks;
};

ProfileSnapshot SnapshotProfile();

/// Per-stack difference `later - earlier` (stacks absent from `earlier`
/// count fully), for windowed collection against a continuously running
/// sampler.
ProfileSnapshot DiffProfile(const ProfileSnapshot& earlier,
                            const ProfileSnapshot& later);

/// Samples for `seconds` and returns the window's snapshot. Starts the
/// sampler when it is not running and stops it again once no window
/// needs it (concurrent windows share the sampler); a sampler started
/// explicitly via StartProfiler keeps running. This is the /profilez
/// implementation.
ProfileSnapshot CollectProfileWindow(double seconds, int hz = 499);

/// Renders a snapshot as collapsed-stack text, one line per path:
/// "frame;frame;frame count\n" — feed to flamegraph.pl directly.
std::string FoldedStacksText(const ProfileSnapshot& snapshot);

/// JSON summary: sample counts, rate, and the top stacks.
std::string ProfileSummaryJson(const ProfileSnapshot& snapshot);

/// Writes FoldedStacksText(SnapshotProfile()) to `path`; false on I/O
/// failure. Exit-path companion of --profile-out / ISREC_PROFILE.
bool WriteProfile(const std::string& path);

namespace internal {
/// Innermost span frame of the calling thread, or nullptr when no span
/// is open (or the thread never recorded one). Read by the heap hook
/// (obs/heap_profiler.cc) to attribute allocations to spans; must stay
/// allocation-free.
const char* CurrentProfileFrame();
}  // namespace internal

}  // namespace isrec::obs

#endif  // ISREC_OBS_PROFILER_H_

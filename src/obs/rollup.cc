#include "obs/rollup.h"

#include <algorithm>

namespace isrec::obs {
namespace {

/// counts_b - counts_a elementwise, clamped at 0 (a mid-window
/// ResetAllMetrics makes the "newer" counts smaller; a negative delta
/// would corrupt percentile math, an understated one only softens it).
uint64_t ClampedDelta(uint64_t newer, uint64_t older) {
  return newer >= older ? newer - older : 0;
}

}  // namespace

void RollingAggregator::AddSample(int64_t t_ms,
                                  const MetricsSnapshot& snapshot) {
  Sample sample;
  sample.t_ms = t_ms;
  sample.counters = snapshot.counters;
  sample.histograms = snapshot.histograms;
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > capacity_) samples_.pop_front();
}

WindowView RollingAggregator::Window(double seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  WindowView view;
  if (samples_.size() < 2 || seconds <= 0.0) return view;

  const Sample& newest = samples_.back();
  const int64_t cutoff_ms =
      newest.t_ms - static_cast<int64_t>(seconds * 1000.0);
  // Base = the oldest retained sample not older than the cutoff; when
  // uptime is shorter than the window this is simply the oldest sample.
  const Sample* base = &samples_.front();
  for (const Sample& s : samples_) {
    if (s.t_ms >= cutoff_ms) {
      base = &s;
      break;
    }
  }
  if (base == &newest || newest.t_ms <= base->t_ms) return view;

  view.valid = true;
  view.seconds = static_cast<double>(newest.t_ms - base->t_ms) / 1000.0;

  // Counters in both samples are name-sorted; merge-join them. Names
  // only ever appear (instruments register once), so a name missing
  // from the base sample counts from 0.
  size_t bi = 0;
  for (const auto& [name, value] : newest.counters) {
    while (bi < base->counters.size() && base->counters[bi].first < name) {
      ++bi;
    }
    const uint64_t before =
        (bi < base->counters.size() && base->counters[bi].first == name)
            ? base->counters[bi].second
            : 0;
    view.counter_rates.emplace_back(
        name, static_cast<double>(ClampedDelta(value, before)) / view.seconds);
  }

  size_t hi = 0;
  for (const HistogramSnapshot& h : newest.histograms) {
    while (hi < base->histograms.size() && base->histograms[hi].name < h.name) {
      ++hi;
    }
    const HistogramSnapshot* before =
        (hi < base->histograms.size() && base->histograms[hi].name == h.name)
            ? &base->histograms[hi]
            : nullptr;
    HistogramSnapshot delta;
    delta.name = h.name;
    delta.bounds = h.bounds;
    delta.counts.resize(h.counts.size(), 0);
    const bool comparable =
        before != nullptr && before->counts.size() == h.counts.size();
    for (size_t b = 0; b < h.counts.size(); ++b) {
      delta.counts[b] =
          ClampedDelta(h.counts[b], comparable ? before->counts[b] : 0);
      delta.total_count += delta.counts[b];
    }
    delta.sum = h.sum - (comparable ? before->sum : 0.0);
    if (delta.sum < 0.0) delta.sum = 0.0;
    view.histograms.push_back(std::move(delta));
  }
  return view;
}

size_t RollingAggregator::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

}  // namespace isrec::obs

#include "obs/heap_profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/metrics.h"
#include "obs/profiler.h"

#if defined(ISREC_HEAP_PROFILE_HOOK) && __has_include(<malloc.h>)
#include <malloc.h>
#define ISREC_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace isrec::obs::heap {
namespace {

// Everything below is reachable from operator new during static
// initialization and thread teardown, so all state is constant-
// initialized (constinit) namespace-scope atomics and trivial
// thread-locals — no dynamic initialization, no allocation, no locks.

constinit std::atomic<bool> g_enabled{false};

struct alignas(64) HeapShard {
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> frees{0};
  std::atomic<uint64_t> alloc_bytes{0};
  std::atomic<uint64_t> usable_alloc_bytes{0};
  std::atomic<uint64_t> usable_freed_bytes{0};
};
constinit HeapShard g_heap_shards[obs::internal::kShards];

/// Per-span attribution: open-addressed fixed table keyed by the frame
/// pointer (span names are static literals, so pointer identity is
/// stable). Rows are claimed with a CAS and never released except by
/// ResetHeapProfile; a full probe sequence counts into g_site_overflow.
constexpr size_t kSiteTableSize = 256;  // Power of two.
constexpr size_t kSiteProbeLimit = 16;

struct SiteCell {
  std::atomic<const char*> span{nullptr};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> bytes{0};
};
constinit SiteCell g_sites[kSiteTableSize];
constinit std::atomic<uint64_t> g_site_overflow{0};

const char* const kNoSpan = "(no_span)";

thread_local AllocationCounter* t_scope = nullptr;

void BumpSite(const char* span, std::size_t size) {
  size_t slot = (reinterpret_cast<uintptr_t>(span) >> 4) *
                0x9e3779b97f4a7c15ull % kSiteTableSize;
  for (size_t probe = 0; probe < kSiteProbeLimit; ++probe) {
    SiteCell& cell = g_sites[slot];
    const char* occupant = cell.span.load(std::memory_order_acquire);
    if (occupant == nullptr) {
      if (!cell.span.compare_exchange_strong(occupant, span,
                                             std::memory_order_acq_rel)) {
        // Lost the claim; fall through to re-check the winner below.
      } else {
        occupant = span;
      }
    }
    if (occupant == span) {
      cell.count.fetch_add(1, std::memory_order_relaxed);
      cell.bytes.fetch_add(size, std::memory_order_relaxed);
      return;
    }
    slot = (slot + 1) % kSiteTableSize;
  }
  g_site_overflow.fetch_add(1, std::memory_order_relaxed);
}

std::size_t UsableSize(void* p) {
#if defined(ISREC_HAVE_MALLOC_USABLE_SIZE)
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

std::string JsonEscape(const char* s) {
  std::string out = "\"";
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  out.push_back('"');
  return out;
}

}  // namespace

/// Hook-side mutator of AllocationCounter internals (friend; keeps the
/// public class surface read-only).
struct HookAccess {
  static void Charge(std::size_t size) {
    if (AllocationCounter* scope = t_scope; scope != nullptr) {
      ++scope->count_;
      scope->bytes_ += size;
    }
  }
};

namespace internal_hook {

/// Called by operator new with the block already allocated. Must never
/// allocate (recursion) and never throw.
void NoteAlloc(void* p, std::size_t size) noexcept {
  const int shard = obs::internal::ThreadShard();
  HeapShard& cell = g_heap_shards[shard];
  cell.allocs.fetch_add(1, std::memory_order_relaxed);
  cell.alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  cell.usable_alloc_bytes.fetch_add(UsableSize(p), std::memory_order_relaxed);
  HookAccess::Charge(size);
  const char* span = obs::internal::CurrentProfileFrame();
  BumpSite(span != nullptr ? span : kNoSpan, size);
}

void NoteFree(void* p) noexcept {
  const int shard = obs::internal::ThreadShard();
  HeapShard& cell = g_heap_shards[shard];
  cell.frees.fetch_add(1, std::memory_order_relaxed);
  cell.usable_freed_bytes.fetch_add(UsableSize(p), std::memory_order_relaxed);
}

bool Enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace internal_hook

bool HookCompiled() {
#if defined(ISREC_HEAP_PROFILE_HOOK)
  return true;
#else
  return false;
#endif
}

bool HeapProfilingEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void EnableHeapProfiling(bool on) {
  g_enabled.store(on && HookCompiled(), std::memory_order_relaxed);
}

HeapTotals SnapshotHeapTotals() {
  HeapTotals totals;
  uint64_t usable_alloc = 0;
  uint64_t usable_freed = 0;
  for (const HeapShard& shard : g_heap_shards) {
    totals.allocs += shard.allocs.load(std::memory_order_relaxed);
    totals.frees += shard.frees.load(std::memory_order_relaxed);
    totals.alloc_bytes += shard.alloc_bytes.load(std::memory_order_relaxed);
    usable_alloc += shard.usable_alloc_bytes.load(std::memory_order_relaxed);
    usable_freed += shard.usable_freed_bytes.load(std::memory_order_relaxed);
  }
  totals.live_allocs = static_cast<int64_t>(totals.allocs) -
                       static_cast<int64_t>(totals.frees);
  totals.live_bytes = static_cast<int64_t>(usable_alloc) -
                      static_cast<int64_t>(usable_freed);
  return totals;
}

std::vector<AllocSite> TopAllocationSites(size_t max_sites) {
  std::vector<AllocSite> sites;
  for (const SiteCell& cell : g_sites) {
    const char* span = cell.span.load(std::memory_order_acquire);
    if (span == nullptr) continue;
    const uint64_t count = cell.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    sites.push_back({span, count, cell.bytes.load(std::memory_order_relaxed)});
  }
  std::sort(sites.begin(), sites.end(),
            [](const AllocSite& a, const AllocSite& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              if (a.count != b.count) return a.count > b.count;
              return std::strcmp(a.span, b.span) < 0;
            });
  if (sites.size() > max_sites) sites.resize(max_sites);
  return sites;
}

uint64_t SiteTableOverflow() {
  return g_site_overflow.load(std::memory_order_relaxed);
}

void ResetHeapProfile() {
  for (HeapShard& shard : g_heap_shards) {
    shard.allocs.store(0, std::memory_order_relaxed);
    shard.frees.store(0, std::memory_order_relaxed);
    shard.alloc_bytes.store(0, std::memory_order_relaxed);
    shard.usable_alloc_bytes.store(0, std::memory_order_relaxed);
    shard.usable_freed_bytes.store(0, std::memory_order_relaxed);
  }
  for (SiteCell& cell : g_sites) {
    // Zero counts but keep claimed spans: a concurrent BumpSite may be
    // between its claim and its bump, and reclaiming rows under it
    // would misfile that one increment.
    cell.count.store(0, std::memory_order_relaxed);
    cell.bytes.store(0, std::memory_order_relaxed);
  }
  g_site_overflow.store(0, std::memory_order_relaxed);
}

std::string HeapzJson() {
  const HeapTotals totals = SnapshotHeapTotals();
  std::string out = "{\"hook_compiled\": ";
  out += HookCompiled() ? "true" : "false";
  out += ", \"enabled\": ";
  out += HeapProfilingEnabled() ? "true" : "false";
  out += ", \"allocs\": " + std::to_string(totals.allocs);
  out += ", \"frees\": " + std::to_string(totals.frees);
  out += ", \"alloc_bytes\": " + std::to_string(totals.alloc_bytes);
  out += ", \"live_allocs\": " + std::to_string(totals.live_allocs);
  out += ", \"live_bytes\": " + std::to_string(totals.live_bytes);
  out += ", \"site_overflow\": " + std::to_string(SiteTableOverflow());
  out += ", \"sites\": [";
  const std::vector<AllocSite> sites = TopAllocationSites();
  for (size_t s = 0; s < sites.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "{\"span\": " + JsonEscape(sites[s].span);
    out += ", \"count\": " + std::to_string(sites[s].count);
    out += ", \"bytes\": " + std::to_string(sites[s].bytes) + "}";
  }
  out += "\n]}";
  return out;
}

AllocationCounter::AllocationCounter() {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  active_ = true;
  parent_ = t_scope;
  t_scope = this;
}

AllocationCounter::~AllocationCounter() {
  if (active_) t_scope = parent_;
}

namespace {

// ISREC_HEAP_PROFILE=1 (or "true"/"on"): heap accounting on from
// process start — the env half of the compile/env gate.
struct HeapEnvInit {
  HeapEnvInit() {
    const char* env = std::getenv("ISREC_HEAP_PROFILE");
    if (env == nullptr) return;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
        std::strcmp(env, "on") == 0) {
      EnableHeapProfiling(true);
    }
  }
} g_heap_env_init;

}  // namespace
}  // namespace isrec::obs::heap

#if defined(ISREC_HEAP_PROFILE_HOOK)

// ---------------------------------------------------------------------
// Global operator new/delete interposition. These replace the standard
// library definitions program-wide (linked in whenever a binary
// references any symbol above — every tool and test links isrec_obs).
// Disabled, each call adds one relaxed load + branch on top of malloc.
// ---------------------------------------------------------------------

namespace {

using isrec::obs::heap::internal_hook::Enabled;
using isrec::obs::heap::internal_hook::NoteAlloc;
using isrec::obs::heap::internal_hook::NoteFree;

void* HookedAllocate(std::size_t size) {
  for (;;) {
    void* p = std::malloc(size != 0 ? size : 1);
    if (p != nullptr) {
      if (Enabled()) NoteAlloc(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* HookedAllocateNothrow(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr && Enabled()) NoteAlloc(p, size);
  return p;
}

void* HookedAllocateAligned(std::size_t size, std::size_t align) {
  if (align < sizeof(void*)) align = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size != 0 ? size : 1) == 0) {
      if (Enabled()) NoteAlloc(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* HookedAllocateAlignedNothrow(std::size_t size,
                                   std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  if (Enabled()) NoteAlloc(p, size);
  return p;
}

void HookedFree(void* p) noexcept {
  if (p == nullptr) return;
  if (Enabled()) NoteFree(p);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return HookedAllocate(size); }
void* operator new[](std::size_t size) { return HookedAllocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return HookedAllocateNothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return HookedAllocateNothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return HookedAllocateAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return HookedAllocateAligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return HookedAllocateAlignedNothrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return HookedAllocateAlignedNothrow(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { HookedFree(p); }
void operator delete[](void* p) noexcept { HookedFree(p); }
void operator delete(void* p, std::size_t) noexcept { HookedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { HookedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  HookedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  HookedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { HookedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { HookedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  HookedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  HookedFree(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  HookedFree(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  HookedFree(p);
}

#endif  // ISREC_HEAP_PROFILE_HOOK

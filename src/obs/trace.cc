#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace isrec::obs {
namespace {

struct TraceEvent {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t request_id;
};

/// Overwritten ring-buffer spans, exposed in the registry so a live
/// scrape can see trace loss without waiting for the exit export.
void CountRingDrop() {
  if (!MetricsEnabled()) return;
  static Counter& dropped = GetCounter("obs.trace.dropped");
  dropped.Add(1);
}

/// One thread's span storage. The owner appends under `mutex` (always
/// uncontended except while an export is copying), so exports see a
/// consistent ring without stopping the world.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t id) : tid(id) {}

  const uint32_t tid;
  std::mutex mutex;
  std::vector<TraceEvent> events;  // Ring once size reaches capacity.
  size_t next = 0;                 // Oldest slot once wrapped.
  uint64_t dropped = 0;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kTraceRingCapacity) {
      events.push_back(event);
      return;
    }
    events[next] = event;
    next = (next + 1) % kTraceRingCapacity;
    ++dropped;
    CountRingDrop();
  }
};

// Leaked (never destroyed): the ISREC_TRACE exit flush below runs during
// static destruction and must still find live buffers.
struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto b = std::make_shared<ThreadBuffer>(state.next_tid++);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::vector<std::shared_ptr<ThreadBuffer>> AllBuffers() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.buffers;
}

// -- Request-timeline index ---------------------------------------------

/// One slot of the bounded request_id → spans index. Sampled request ids
/// map to slots round-robin; a newer id evicts the older occupant, and
/// late spans for the evicted id are dropped (counted, never blocked).
struct TimelineSlot {
  std::mutex mutex;
  uint64_t request_id = 0;  // 0 = empty.
  uint64_t seq = 0;         // Claim order, for newest-first snapshots.
  std::vector<RequestSpan> spans;
};

// Leaked for the same static-destruction reason as TraceState.
struct RequestTraceState {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> sample_every{1};
  std::atomic<uint64_t> next_seq{1};
  std::atomic<uint64_t> dropped{0};
  TimelineSlot slots[kRequestTimelineSlots];
};

RequestTraceState& ReqState() {
  static RequestTraceState* state = new RequestTraceState();
  return *state;
}

void CountTimelineDrop() {
  ReqState().dropped.fetch_add(1, std::memory_order_relaxed);
  if (!MetricsEnabled()) return;
  static Counter& dropped = GetCounter("obs.trace.request_dropped");
  dropped.Add(1);
}

/// Indexes one completed span under `request_id`. The id is already
/// known to be sampled; `tid` is the recording thread's trace tid.
void IndexRequestSpan(const char* name, uint64_t start_ns, uint64_t dur_ns,
                      uint64_t request_id, uint32_t tid) {
  RequestTraceState& state = ReqState();
  const uint64_t every =
      std::max<uint64_t>(1, state.sample_every.load(std::memory_order_relaxed));
  TimelineSlot& slot =
      state.slots[((request_id - 1) / every) % kRequestTimelineSlots];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.request_id != request_id) {
    if (request_id < slot.request_id) {
      // Late span for a request this slot already evicted.
      CountTimelineDrop();
      return;
    }
    slot.request_id = request_id;
    slot.seq = state.next_seq.fetch_add(1, std::memory_order_relaxed);
    slot.spans.clear();
  }
  if (slot.spans.size() >= kRequestTimelineSpanCap) {
    CountTimelineDrop();
    return;
  }
  slot.spans.push_back({name, start_ns, dur_ns, tid});
}

// ISREC_TRACE=path.json: tracing on from process start, chrome trace
// written at exit. Constructed during static init (so ~everything is
// traced); the destructor runs after main, when the leaked buffers are
// still alive.
struct TraceEnvInit {
  std::string out_path;
  TraceEnvInit() {
    if (const char* env = std::getenv("ISREC_TRACE");
        env != nullptr && env[0] != '\0') {
      out_path = env;
      EnableTracing(true);
    }
  }
  ~TraceEnvInit() {
    if (out_path.empty()) return;
    if (WriteChromeTrace(out_path)) {
      std::fprintf(stderr, "[obs] trace written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "[obs] cannot write trace to %s\n",
                   out_path.c_str());
    }
  }
} g_trace_env_init;

}  // namespace

namespace internal {

std::atomic<uint32_t> g_span_hooks{0};

void SetSpanHook(uint32_t bit, bool on) {
  if (on) {
    g_span_hooks.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_span_hooks.fetch_and(~bit, std::memory_order_relaxed);
  }
}

uint64_t TraceNowNs() {
  // Epoch = first call, so exported timestamps stay small and stable.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t request_id) {
  ThreadBuffer& buffer = LocalBuffer();
  const uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  buffer.Push({name, start_ns, dur_ns, request_id});
  if (request_id != 0 && RequestTracingEnabled()) {
    RequestTraceState& state = ReqState();
    const uint64_t every = std::max<uint64_t>(
        1, state.sample_every.load(std::memory_order_relaxed));
    if ((request_id - 1) % every == 0) {
      IndexRequestSpan(name, start_ns, dur_ns, request_id, buffer.tid);
    }
  }
}

}  // namespace internal

void EnableTracing(bool on) {
  internal::SetSpanHook(internal::kSpanHookTrace, on);
}

bool RequestTracingEnabled() {
  return ReqState().enabled.load(std::memory_order_relaxed);
}

void EnableRequestTracing(bool on) {
  ReqState().enabled.store(on, std::memory_order_relaxed);
}

void SetRequestSampleEvery(uint64_t n) {
  ReqState().sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

uint64_t TraceClockNs() { return internal::TraceNowNs(); }

void RecordRequestSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                       uint64_t request_id) {
  if (!TracingEnabled() || request_id == 0) return;
  internal::RecordSpan(name, start_ns, end_ns, request_id);
}

bool FindRequestTimeline(uint64_t request_id, RequestTimeline* out) {
  if (request_id == 0) return false;
  RequestTraceState& state = ReqState();
  const uint64_t every =
      std::max<uint64_t>(1, state.sample_every.load(std::memory_order_relaxed));
  if ((request_id - 1) % every != 0) return false;  // Never indexed.
  TimelineSlot& slot =
      state.slots[((request_id - 1) / every) % kRequestTimelineSlots];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.request_id != request_id || slot.spans.empty()) return false;
  out->request_id = request_id;
  out->spans = slot.spans;
  std::stable_sort(out->spans.begin(), out->spans.end(),
                   [](const RequestSpan& a, const RequestSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return true;
}

std::vector<RequestTimeline> SnapshotRequestTimelines() {
  RequestTraceState& state = ReqState();
  struct Entry {
    uint64_t seq;
    RequestTimeline timeline;
  };
  std::vector<Entry> entries;
  for (TimelineSlot& slot : state.slots) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.request_id == 0 || slot.spans.empty()) continue;
    entries.push_back({slot.seq, {slot.request_id, slot.spans}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq > b.seq; });
  std::vector<RequestTimeline> out;
  out.reserve(entries.size());
  for (Entry& e : entries) {
    std::stable_sort(e.timeline.spans.begin(), e.timeline.spans.end(),
                     [](const RequestSpan& a, const RequestSpan& b) {
                       return a.start_ns < b.start_ns;
                     });
    out.push_back(std::move(e.timeline));
  }
  return out;
}

uint64_t RequestTimelineDropped() {
  return ReqState().dropped.load(std::memory_order_relaxed);
}

void ClearRequestTimelines() {
  RequestTraceState& state = ReqState();
  for (TimelineSlot& slot : state.slots) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.request_id = 0;
    slot.seq = 0;
    slot.spans.clear();
  }
  state.dropped.store(0, std::memory_order_relaxed);
}

size_t TraceEventCount() {
  size_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

uint64_t TraceDroppedCount() {
  uint64_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void ClearTrace() {
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::string DumpChromeTraceJson() {
  struct Exported {
    TraceEvent event;
    uint32_t tid;
  };
  std::vector<Exported> exported;
  uint64_t dropped = 0;
  for (const auto& buffer : AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    dropped += buffer->dropped;
    // Oldest-first ring order: [next, end) then [0, next).
    const size_t n = buffer->events.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t slot = n < kTraceRingCapacity ? i : (buffer->next + i) % n;
      exported.push_back({buffer->events[slot], buffer->tid});
    }
  }
  std::stable_sort(exported.begin(), exported.end(),
                   [](const Exported& a, const Exported& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.event.start_ns < b.event.start_ns;
                   });

  // Trace Event Format, JSON-object form. ts/dur are microseconds.
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"isrecDroppedEvents\": " + std::to_string(dropped) + ",\n";
  out += "\"traceEvents\": [";
  char line[384];
  for (size_t i = 0; i < exported.size(); ++i) {
    const Exported& e = exported[i];
    char args[64] = "";
    if (e.event.request_id != 0) {
      std::snprintf(args, sizeof(args), ", \"args\": {\"request_id\": %llu}",
                    static_cast<unsigned long long>(e.event.request_id));
    }
    std::snprintf(line, sizeof(line),
                  "%s\n{\"name\": \"%s\", \"cat\": \"isrec\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u%s}",
                  i == 0 ? "" : ",", e.event.name,
                  static_cast<double>(e.event.start_ns) / 1000.0,
                  static_cast<double>(e.event.dur_ns) / 1000.0, e.tid, args);
    out += line;
  }
  out += "\n]\n}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = DumpChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  return ok;
}

}  // namespace isrec::obs

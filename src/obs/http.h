#ifndef ISREC_OBS_HTTP_H_
#define ISREC_OBS_HTTP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace isrec::obs {

/// Minimal dependency-free HTTP/1.1 server (DESIGN.md "Admin server &
/// request tracing"). Blocking sockets, one background accept thread
/// handing connections to a small worker pool (1 worker by default, so
/// the admin plane keeps its original one-at-a-time behavior) —
/// deliberately the simplest thing that a browser, curl, a Prometheus
/// scraper, and the isrec_router data plane can all talk to. GET, HEAD,
/// and POST (with a Content-Length body) are supported; anything else
/// is a 405. Responses default to `Connection: close`; a client that
/// sends an explicit `Connection: keep-alive` request header gets the
/// connection held open for further requests (the router's forwarder
/// does, so steady-state forwarding pays no per-request TCP handshake).
/// An idle kept-alive connection is closed after a short wait so it
/// cannot pin a worker.

/// A parsed request: method, path, decoded query parameters
/// ("/tracez?format=json" → path "/tracez", query {{"format","json"}}),
/// request headers, and — for POST — the request body.
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> query;
  /// Header name → value, names lowercased and values trimmed (header
  /// names are case-insensitive on the wire; a repeated name keeps the
  /// first occurrence). This is how trace context crosses the router →
  /// replica hop (X-Isrec-Trace, obs/trace_context.h).
  std::map<std::string, std::string> headers;
  std::string body;  // POST payload; empty for GET/HEAD.

  /// Query value or `fallback` when the key is absent.
  const std::string& QueryOr(const std::string& key,
                             const std::string& fallback) const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }

  /// Header value (by lowercase name) or `fallback` when absent.
  /// Returns by value: a reference would dangle whenever the fallback
  /// is a temporary (the common `HeaderOr("name", "")` call shape).
  std::string HeaderOr(const std::string& lowercase_name,
                       const std::string& fallback) const {
    auto it = headers.find(lowercase_name);
    return it == headers.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Produces the response for one request. Runs on a server worker
/// thread (concurrently with other workers when num_workers > 1);
/// exceptions become a 500.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds `bind_address:port` (port 0 picks an ephemeral port, readable
  /// afterwards via port()) and starts the accept thread plus
  /// max(1, num_workers) handler threads. A data-plane server (the
  /// router, a replica's /recommend) wants several workers so slow
  /// requests don't serialize; the admin default of 1 preserves the
  /// original one-connection-at-a-time behavior. False (with a log
  /// line) when the socket can't be bound.
  bool Start(const std::string& bind_address, int port, HttpHandler handler,
             int num_workers = 1);

  /// Stops accepting, drains queued connections, closes the listener,
  /// joins all threads. Idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  HttpHandler handler_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  int listen_fd_ = -1;
  int port_ = 0;

  // Accepted fds waiting for a worker. Bounded: past the cap the accept
  // loop closes the connection instead of queueing unboundedly (counted
  // in obs http.overflow_closed when metrics are on).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  bool stopping_ = false;
};

/// Blocking HTTP client with per-request connect/read timeouts, used by
/// the router's prober + forwarder and by tests/benches. IPv4
/// dotted-quad hosts only — exactly the peer the HttpServer above is.
/// By default each request opens its own connection (`Connection:
/// close`); with keep_alive the client holds ONE pooled connection per
/// (host, port) and reuses it across requests, falling back to a fresh
/// connection (one retry) when a pooled connection turns out to be
/// stale — the peer may close an idle connection at any time.
struct HttpClientOptions {
  int connect_timeout_ms = 1000;
  /// Socket receive/send timeout; also bounds how long one Fetch can
  /// stall on a wedged peer.
  int read_timeout_ms = 5000;
  /// Reuse connections (HTTP keep-alive). A pooled connection is only
  /// kept when the server's response advertises keep-alive too.
  bool keep_alive = false;
  /// Oldest a pooled connection may be (since its last use) and still
  /// be reused. The HttpServer above closes an idle kept-alive
  /// connection after its ~500 ms wait, so a client that reuses an
  /// older fd pays a doomed send + fresh-connect retry on every burst
  /// edge; staying under the server's window reconnects proactively
  /// instead (counted as http.keepalive_stale_avoided). <= 0 disables
  /// the age check.
  int keepalive_max_idle_ms = 400;
};

/// Extra request headers for HttpClient calls, sent verbatim as
/// "Name: value" lines (e.g. the X-Isrec-Trace propagation headers).
using HttpHeaderList = std::vector<std::pair<std::string, std::string>>;

class HttpClient {
 public:
  explicit HttpClient(HttpClientOptions options = {}) : options_(options) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  struct Result {
    bool ok = false;        // Transport success (any HTTP status counts).
    int status = 0;         // HTTP status when ok.
    std::string body;
    std::string error;      // Transport failure detail when !ok.
  };

  /// GET http://host:port{target}. `timeout_ms` > 0 caps the configured
  /// connect/read timeouts for this one call. `extra_headers` are sent
  /// verbatim after the standard request headers.
  Result Get(const std::string& host, int port, const std::string& target,
             int timeout_ms = 0, const HttpHeaderList& extra_headers = {});

  /// POST `request_body` (with the given Content-Type) to
  /// http://host:port{target}.
  Result Post(const std::string& host, int port, const std::string& target,
              const std::string& content_type,
              const std::string& request_body, int timeout_ms = 0,
              const HttpHeaderList& extra_headers = {});

  const HttpClientOptions& options() const { return options_; }

  /// Connections currently parked in the keep-alive pool (tests).
  size_t pooled_connections() const;

 private:
  Result Fetch(const std::string& host, int port, const std::string& target,
               const char* method, const std::string& content_type,
               const std::string& request_body, int timeout_ms,
               const HttpHeaderList& extra_headers);

  // One parked connection with its last-use time, for the idle-age
  // check in TakePooled.
  struct PooledConnection {
    int fd = -1;
    int64_t last_use_ms = 0;
  };

  // Takes/returns the single pooled fd for (host, port); -1 when none
  // (including when the parked fd idled past keepalive_max_idle_ms and
  // was proactively closed).
  int TakePooled(const std::string& host, int port);
  void ReturnPooled(const std::string& host, int port, int fd);

  HttpClientOptions options_;
  mutable std::mutex pool_mutex_;
  std::map<std::pair<std::string, int>, PooledConnection> pool_;
};

/// Blocking GET for tests, benches, and in-process smoke checks:
/// fetches http://host:port{target}, fills `status` and `body`. False on
/// connect/read failure. Wraps HttpClient at its default (5s) timeouts.
bool HttpGet(const std::string& host, int port, const std::string& target,
             int* status, std::string* body);

}  // namespace isrec::obs

#endif  // ISREC_OBS_HTTP_H_

#ifndef ISREC_OBS_HTTP_H_
#define ISREC_OBS_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace isrec::obs {

/// Minimal dependency-free HTTP/1.1 server (DESIGN.md "Admin server &
/// request tracing"). Blocking sockets, one background accept thread,
/// one connection served at a time, `Connection: close` on every
/// response — deliberately the simplest thing that a browser, curl, and
/// a Prometheus scraper can all talk to. Not a general-purpose server:
/// it exists to expose in-process introspection endpoints.

/// A parsed request line: method, path, and decoded query parameters
/// ("/tracez?format=json" → path "/tracez", query {{"format","json"}}).
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> query;

  /// Query value or `fallback` when the key is absent.
  const std::string& QueryOr(const std::string& key,
                             const std::string& fallback) const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Produces the response for one request. Runs on the server thread;
/// exceptions become a 500.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds `bind_address:port` (port 0 picks an ephemeral port, readable
  /// afterwards via port()) and starts the accept thread. False (with a
  /// log line) when the socket can't be bound.
  bool Start(const std::string& bind_address, int port, HttpHandler handler);

  /// Stops accepting, closes the listener, joins the thread. Idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }

 private:
  void ServeLoop();
  void ServeConnection(int fd);

  HttpHandler handler_;
  std::thread thread_;
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Blocking GET client for tests, benches, and in-process smoke checks:
/// fetches http://host:port{target}, fills `status` and `body`. False on
/// connect/read failure. 5s socket timeouts.
bool HttpGet(const std::string& host, int port, const std::string& target,
             int* status, std::string* body);

}  // namespace isrec::obs

#endif  // ISREC_OBS_HTTP_H_

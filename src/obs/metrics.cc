#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace isrec::obs {
namespace internal {

std::atomic<bool> g_metrics_enabled{false};

int ThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

namespace {

// Reads ISREC_METRICS once at static-init time. Lives in this TU so any
// call site that checks MetricsEnabled() (whose inline body references
// g_metrics_enabled above) pulls the initializer in.
struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* env = std::getenv("ISREC_METRICS");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
      EnableMetrics(true);
    }
  }
} g_metrics_env_init;

// Bit-twiddled atomic double accumulator (per histogram shard).
void AtomicAddDouble(std::atomic<uint64_t>& cell, double delta) {
  uint64_t observed = cell.load(std::memory_order_relaxed);
  for (;;) {
    double value;
    static_assert(sizeof(value) == sizeof(observed));
    __builtin_memcpy(&value, &observed, sizeof(value));
    value += delta;
    uint64_t desired;
    __builtin_memcpy(&desired, &value, sizeof(desired));
    if (cell.compare_exchange_weak(observed, desired,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

double BitsToDouble(uint64_t bits) {
  double value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

// The registry is a deliberately leaked heap object: instruments must
// outlive every static destructor that might still export them (the
// ISREC_TRACE exit flush, logging from other TUs' destructors).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::string FormatDouble(double v) {
  if (!(v == v)) return "\"nan\"";               // NaN (v != v).
  if (v > 1e308 || v < -1e308) return "\"inf\"";  // +-inf.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void EnableMetrics(bool on) {
  internal::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// -- Counter ------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// -- Gauge --------------------------------------------------------------

void Gauge::Add(double delta) {
  double observed = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

// -- Histogram ----------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      num_buckets_(static_cast<int>(bounds_.size()) + 1) {
  // Layout: kShards rows of (num_buckets_ count cells + 1 sum cell).
  cells_ = new internal::ShardCell[internal::kShards * (num_buckets_ + 1)]();
}

Histogram::~Histogram() { delete[] cells_; }

void Histogram::Observe(double v) {
  const int bucket = static_cast<int>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  internal::ShardCell* row =
      cells_ + internal::ThreadShard() * (num_buckets_ + 1);
  row[bucket].value.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(row[num_buckets_].value, v);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(num_buckets_, 0);
  for (int s = 0; s < internal::kShards; ++s) {
    const internal::ShardCell* row = cells_ + s * (num_buckets_ + 1);
    for (int b = 0; b < num_buckets_; ++b) {
      counts[b] += row[b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (int s = 0; s < internal::kShards; ++s) {
    const internal::ShardCell* row = cells_ + s * (num_buckets_ + 1);
    total += BitsToDouble(row[num_buckets_].value.load(
        std::memory_order_relaxed));
  }
  return total;
}

void Histogram::Reset() {
  for (int i = 0; i < internal::kShards * (num_buckets_ + 1); ++i) {
    cells_[i].value.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (int i = 0; i < count; ++i) bounds.push_back(start + i * width);
  return bounds;
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* buckets =
      new std::vector<double>(ExponentialBuckets(0.001, 2.0, 25));
  return *buckets;
}

// -- Registry -----------------------------------------------------------

Counter& GetCounter(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.counters.find(name);
  if (it == registry.counters.end()) {
    it = registry.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& GetGauge(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.gauges.find(name);
  if (it == registry.gauges.end()) {
    it = registry.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& GetHistogram(std::string_view name,
                        const std::vector<double>& bounds) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.histograms.find(name);
  if (it == registry.histograms.end()) {
    it = registry.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

// -- Snapshots ----------------------------------------------------------

double HistogramSnapshot::Mean() const {
  return total_count == 0 ? 0.0 : sum / static_cast<double>(total_count);
}

double HistogramSnapshot::Percentile(double p) const {
  if (total_count == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const double target = p * static_cast<double>(total_count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      // Values above the last finite bound clamp to it (no upper edge).
      if (b >= bounds.size()) {
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          (target - static_cast<double>(cumulative)) / counts[b];
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<uint64_t> HistogramSnapshot::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(counts.size(), 0);
  uint64_t running = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    running += counts[b];
    cumulative[b] = running;
  }
  return cumulative;
}

MetricsSnapshot SnapshotMetrics() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(registry.counters.size());
  for (const auto& [name, counter] : registry.counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : registry.gauges) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : registry.histograms) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    h.sum = histogram->Sum();
    for (uint64_t c : h.counts) h.total_count += c;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

std::string DumpMetricsJson() {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, snapshot.counters[i].first);
    out += ": " + std::to_string(snapshot.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, snapshot.gauges[i].first);
    out += ": " + FormatDouble(snapshot.gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.total_count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"mean\": " + FormatDouble(h.Mean());
    out += ", \"p50\": " + FormatDouble(h.Percentile(0.50));
    out += ", \"p95\": " + FormatDouble(h.Percentile(0.95));
    out += ", \"p99\": " + FormatDouble(h.Percentile(0.99));
    out += ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(h.bounds[b]);
    }
    out += "], \"bucket_counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string DumpMetricsTable() {
  const MetricsSnapshot snapshot = SnapshotMetrics();
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& [name, value] : snapshot.counters) {
    rows.emplace_back(name, std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    rows.emplace_back(name, buffer);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "count=%llu mean=%.4g p50=%.4g p95=%.4g p99=%.4g",
                  static_cast<unsigned long long>(h.total_count), h.Mean(),
                  h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
    rows.emplace_back(h.name, buffer);
  }
  size_t name_width = sizeof("metric") - 1;
  for (const auto& [name, value] : rows) {
    name_width = std::max(name_width, name.size());
  }
  std::string out = "metric";
  out.append(name_width - 6, ' ');
  out += "  value\n";
  out.append(name_width + 7, '-');
  out += "\n";
  for (const auto& [name, value] : rows) {
    out += name;
    out.append(name_width - name.size(), ' ');
    out += "  " + value + "\n";
  }
  return out;
}

bool WriteMetricsJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = DumpMetricsJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return written == json.size() && std::fclose(f) == 0;
}

void ResetAllMetrics() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& [name, counter] : registry.counters) counter->Reset();
  for (const auto& [name, gauge] : registry.gauges) gauge->Reset();
  for (const auto& [name, histogram] : registry.histograms) {
    histogram->Reset();
  }
}

}  // namespace isrec::obs

#ifndef ISREC_OBS_ROLLUP_H_
#define ISREC_OBS_ROLLUP_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace isrec::obs {

/// Time-windowed view over the metrics registry (DESIGN.md "Admin
/// server & request tracing"): the admin server samples SnapshotMetrics
/// periodically into a RollingAggregator, and /statusz renders each
/// window as rates and windowed percentiles instead of lifetime totals.

/// Deltas over one trailing window, derived from two stored samples.
struct WindowView {
  bool valid = false;   // False when fewer than 2 samples span the window.
  double seconds = 0.0;  // Actual span covered (may be < the requested one).
  /// Per-second counter increase over the window, name-sorted.
  std::vector<std::pair<std::string, double>> counter_rates;
  /// Per-histogram bucket-count deltas over the window; Percentile()
  /// and Mean() on these give the window's distribution, not lifetime's.
  std::vector<HistogramSnapshot> histograms;
};

/// Bounded ring of timestamped registry snapshots. Thread-safe: the
/// sampler thread Adds while /statusz handlers call Window. Gauges are
/// instantaneous and excluded (read them from a live snapshot instead).
class RollingAggregator {
 public:
  /// `capacity` samples retained (default: 61 one-second samples covers
  /// a 60 s trailing window).
  explicit RollingAggregator(size_t capacity = 61) : capacity_(capacity) {}

  /// Records `snapshot` taken at `t_ms` (any monotonic millisecond
  /// clock; samples must be added in nondecreasing t_ms order).
  void AddSample(int64_t t_ms, const MetricsSnapshot& snapshot);

  /// The trailing window ending at the newest sample and reaching back
  /// `seconds` (or to the oldest retained sample, whichever is nearer).
  WindowView Window(double seconds) const;

  size_t sample_count() const;

 private:
  struct Sample {
    int64_t t_ms = 0;
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<HistogramSnapshot> histograms;
  };

  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<Sample> samples_;
};

}  // namespace isrec::obs

#endif  // ISREC_OBS_ROLLUP_H_

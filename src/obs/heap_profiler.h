#ifndef ISREC_OBS_HEAP_PROFILER_H_
#define ISREC_OBS_HEAP_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace isrec::obs::heap {

/// Hooked-allocator heap accounting (DESIGN.md "Profiling plane").
/// obs/heap_profiler.cc replaces the global operator new/delete family
/// with thin wrappers that — when heap profiling is enabled — count
/// every allocation into sharded process totals, into the calling
/// thread's innermost AllocationCounter scope, and into a fixed-size
/// per-span attribution table keyed by the thread's current profiler
/// frame (obs/profiler.h). Exact by construction: every new/delete in
/// the process goes through the hook, so counters are counts, not
/// samples. ROADMAP item 4's "zero heap allocations per steady-state
/// request" is measured against exactly these numbers.
///
/// Gating, two layers:
///  - compile: the CMake option ISREC_HEAP_PROFILE (default ON)
///    compiles the operator new/delete interposition; OFF builds a
///    hook-free binary where HookCompiled() is false and every counter
///    reads zero.
///  - runtime: EnableHeapProfiling(true), --heap-profile, or the
///    ISREC_HEAP_PROFILE=1 environment variable. Disabled (the
///    default), an allocation pays exactly one relaxed atomic load and
///    one branch on top of malloc — the established off-path contract.
///
/// The accounting path is allocation-free (fixed tables, sharded
/// atomics, trivial thread-locals), so the hook can never recurse, and
/// everything is atomics — TSan/ASan clean under the sanitizer CI jobs.

/// True when the operator new/delete interposition was compiled in
/// (CMake -DISREC_HEAP_PROFILE=ON, the default).
bool HookCompiled();

/// True when allocations are being counted right now.
bool HeapProfilingEnabled();

/// Turns heap accounting on/off process-wide. A no-op (stays false)
/// when the hook is compiled out.
void EnableHeapProfiling(bool on);

/// Process-wide totals since the last ResetHeapProfile. `alloc_bytes`
/// sums requested sizes; `live_bytes` is usable-size based (what the
/// allocator actually carved out) so allocs and frees cancel exactly.
struct HeapTotals {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t alloc_bytes = 0;
  int64_t live_allocs = 0;  // allocs - frees; negative when frees of
                            // pre-enable allocations outnumber allocs.
  int64_t live_bytes = 0;
};

HeapTotals SnapshotHeapTotals();

/// One row of the per-span attribution table: allocations observed
/// while `span` (a profiler frame, static storage) was the calling
/// thread's innermost open span. "(no_span)" collects the rest.
struct AllocSite {
  const char* span = nullptr;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// Top allocation sites by bytes, descending (ties by count then name).
/// The table is fixed-size; overflowing sites are counted in
/// SiteTableOverflow() rather than dropped silently.
std::vector<AllocSite> TopAllocationSites(size_t max_sites = 32);

/// Allocations that could not claim a site row (table full).
uint64_t SiteTableOverflow();

/// Zeroes the totals and the site table (tests, benches).
void ResetHeapProfile();

/// The /heapz JSON body: gate states, totals, top sites.
std::string HeapzJson();

/// RAII scope counting the calling thread's allocations while heap
/// profiling is enabled: the engine wraps each request phase
/// (enqueue/batch/score/respond) in one. Scopes nest; an allocation is
/// charged to the innermost active scope only, so sibling scopes sum
/// exactly to the hooked totals of the code they cover (pinned by
/// profiler_test). Inactive (heap profiling off at construction), the
/// scope is one relaxed load + branch and counts nothing.
class AllocationCounter {
 public:
  AllocationCounter();
  ~AllocationCounter();

  AllocationCounter(const AllocationCounter&) = delete;
  AllocationCounter& operator=(const AllocationCounter&) = delete;

  bool active() const { return active_; }
  uint64_t count() const { return count_; }
  uint64_t bytes() const { return bytes_; }

 private:
  friend struct HookAccess;
  AllocationCounter* parent_ = nullptr;
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
  bool active_ = false;
};

}  // namespace isrec::obs::heap

#endif  // ISREC_OBS_HEAP_PROFILER_H_

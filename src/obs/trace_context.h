#ifndef ISREC_OBS_TRACE_CONTEXT_H_
#define ISREC_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

#include "obs/http.h"

namespace isrec::obs {

/// Cross-process trace context (DESIGN.md "Distributed tracing & fleet
/// metrics"). A trace id is a nonzero 64-bit value minted once at the
/// edge (the router, or whichever process first samples the request)
/// and carried across HTTP hops as headers, so router-side and
/// replica-side spans recorded under the same id can be stitched into
/// one timeline. The id doubles as the serve::Request id on the
/// replica, which is how it reaches the per-request span timeline.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no trace context (propagation off).
  int hop = 0;            // 0 at the edge; +1 per forwarded hop.
  bool echo = false;      // Peer should return its span timeline.

  bool active() const { return trace_id != 0; }
};

/// Wire header names. Values: trace id as 16 lowercase hex chars, hop
/// as a small decimal, echo as "1" (absent means no echo).
inline constexpr char kTraceHeader[] = "X-Isrec-Trace";
inline constexpr char kTraceHopHeader[] = "X-Isrec-Trace-Hop";
inline constexpr char kTraceEchoHeader[] = "X-Isrec-Trace-Echo";

/// Mints a fresh nonzero trace id: a per-process random base (seeded
/// from the OS entropy pool and the clock) mixed with an atomic counter
/// through splitmix64, so ids are unique within a process and collide
/// across processes only by 64-bit chance.
uint64_t NewTraceId();

/// 16 lowercase hex chars, zero-padded ("00000000000004d2").
std::string FormatTraceId(uint64_t trace_id);

/// Parses FormatTraceId output (any-case hex, with or without
/// padding). False — leaving `out` untouched — on empty, non-hex, or
/// zero input.
bool ParseTraceId(const std::string& text, uint64_t* out);

/// Extracts the trace context a peer sent on `request`'s headers. An
/// absent or unparseable trace header yields an inactive context (the
/// request is simply untraced); a malformed hop defaults to 0.
TraceContext TraceContextFromHeaders(const HttpRequest& request);

/// Appends the wire headers for `context` to `headers` (for
/// HttpClient's extra_headers). No-op when the context is inactive.
void AppendTraceHeaders(const TraceContext& context, HttpHeaderList* headers);

}  // namespace isrec::obs

#endif  // ISREC_OBS_TRACE_CONTEXT_H_

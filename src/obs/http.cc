#include "obs/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace isrec::obs {
namespace {

// Caps one request's header block + body; recommend payloads are a few
// KB of history ids, so anything larger is garbage or abuse.
constexpr size_t kMaxRequestBytes = 256 * 1024;
constexpr int kSocketTimeoutS = 5;
// Accepted-but-unserved connections the server will hold before it
// starts closing new ones (backpressure to the kernel, not unbounded
// memory).
constexpr size_t kMaxPendingConnections = 1024;
// How long a worker waits for the NEXT request on a kept-alive
// connection before closing it. Short on purpose: an idle keep-alive
// peer must not pin a worker that other connections are queueing for.
constexpr int kKeepAliveIdleMs = 500;

void SetSocketTimeoutsMs(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, swallowing SIGPIPE (the peer may hang up).
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

char HexNibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<char>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<char>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<char>(c - 'A' + 10);
  return -1;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const char hi = HexNibble(s[i + 1]);
      const char lo = HexNibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

/// Parses "GET /path?a=1&b=2 HTTP/1.1" into `out`; false on malformed
/// request lines (no two spaces, empty path, ...).
bool ParseRequestLine(const std::string& line, HttpRequest* out) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  out->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t qmark = target.find('?');
  out->path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string::npos) {
    std::string qs = target.substr(qmark + 1);
    size_t pos = 0;
    while (pos <= qs.size()) {
      size_t amp = qs.find('&', pos);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(pos, amp - pos);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          out->query[UrlDecode(pair)] = "";
        } else {
          out->query[UrlDecode(pair.substr(0, eq))] =
              UrlDecode(pair.substr(eq + 1));
        }
      }
      pos = amp + 1;
    }
  }
  return true;
}

/// Parses a request header block (everything after the request line)
/// into `out`: names lowercased, values trimmed, first occurrence of a
/// repeated name wins. `headers` is the raw block INCLUDING the request
/// line; the first line is skipped.
void ParseHeaderBlock(const std::string& headers,
                      std::map<std::string, std::string>* out) {
  size_t pos = headers.find("\r\n");
  pos = pos == std::string::npos ? headers.size() : pos + 2;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    std::string value = line.substr(colon + 1);
    const size_t first = value.find_first_not_of(" \t");
    const size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    out->emplace(std::move(name), std::move(value));
  }
}

/// Monotonic milliseconds for keep-alive pool idle-age tracking.
int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Case-insensitive "Content-Length: N" lookup within a header block;
/// -1 when absent or malformed.
long ContentLength(const std::string& headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "content-length") {
        return std::atol(line.c_str() + colon + 1);
      }
    }
    pos = eol + 2;
  }
  return -1;
}

/// Case-insensitive scan of a header block for `name: value` (value
/// compared after trimming surrounding spaces, case-insensitively).
bool HeaderEquals(const std::string& headers, const std::string& name,
                  const std::string& value) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string got_name = line.substr(0, colon);
      for (char& c : got_name) c = static_cast<char>(std::tolower(c));
      if (got_name == name) {
        std::string got_value = line.substr(colon + 1);
        const size_t first = got_value.find_first_not_of(" \t");
        const size_t last = got_value.find_last_not_of(" \t");
        if (first == std::string::npos) return value.empty();
        got_value = got_value.substr(first, last - first + 1);
        for (char& c : got_value) c = static_cast<char>(std::tolower(c));
        return got_value == value;
      }
    }
    pos = eol + 2;
  }
  return false;
}

/// Waits up to `timeout_ms` for `fd` to become readable.
bool WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc > 0;
}

/// Connects to host:port with a bounded connect timeout (non-blocking
/// connect + poll), then restores blocking mode with read/send
/// timeouts. Returns the fd, or -1 with `error` filled.
int ConnectWithTimeout(const std::string& host, int port,
                       const HttpClientOptions& options, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host '" + host + "' (IPv4 dotted quad expected)";
    ::close(fd);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      *error = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, options.connect_timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      *error = rc == 0 ? "connect timeout"
                       : std::string("poll: ") + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      *error = std::string("connect: ") + std::strerror(so_error);
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetSocketTimeoutsMs(fd, options.read_timeout_ms);
  return fd;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(const std::string& bind_address, int port,
                       HttpHandler handler, int num_workers) {
  if (listen_fd_ >= 0) return false;  // Already started.
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "[obs] http: socket() failed: %s\n",
                 std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "[obs] http: bad bind address '%s'\n",
                 bind_address.c_str());
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "[obs] http: cannot bind %s:%d: %s\n",
                 bind_address.c_str(), port, std::strerror(errno));
    ::close(fd);
    return false;
  }
  if (::listen(fd, 128) != 0) {
    std::fprintf(stderr, "[obs] http: listen() failed: %s\n",
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stopping_ = false;
  const int workers = num_workers < 1 ? 1 : num_workers;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept() (which then fails and exits
  // the loop); close after the join so the fd can't be reused while the
  // accept thread still references it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Workers drain pending_fds_ before exiting; anything still queued
  // (stopping_ raced an accept) is closed unanswered.
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (EINVAL) or broken: stop accepting.
    }
    SetSocketTimeoutsMs(fd, kSocketTimeoutS * 1000);
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_fds_.size() < kMaxPendingConnections) {
        pending_fds_.push_back(fd);
        queued = true;
      }
    }
    if (queued) {
      queue_cv_.notify_one();
    } else {
      ::close(fd);  // Saturated: shed at the door rather than queue forever.
      if (MetricsEnabled()) {
        static Counter& overflow = GetCounter("http.overflow_closed");
        overflow.Add(1);
      }
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !pending_fds_.empty(); });
      if (!pending_fds_.empty()) {
        fd = pending_fds_.front();
        pending_fds_.pop_front();
      } else if (stopping_) {
        return;
      }
    }
    if (fd >= 0) {
      ServeConnection(fd);
      ::close(fd);
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string raw;       // Carries pipelined bytes across requests.
  bool first_request = true;
  char chunk[4096];
  for (;;) {
    // Read until the full header block has arrived.
    size_t header_end = std::string::npos;
    while ((header_end = raw.find("\r\n\r\n")) == std::string::npos) {
      if (raw.size() > kMaxRequestBytes) return;
      if (!first_request && raw.empty() &&
          !WaitReadable(fd, kKeepAliveIdleMs)) {
        return;  // Idle kept-alive peer: give the worker back.
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // Timeout or hangup before a full request arrived.
      }
      raw.append(chunk, static_cast<size_t>(n));
    }

    HttpResponse response;
    HttpRequest request;
    const std::string headers = raw.substr(0, header_end);
    const std::string request_line = raw.substr(0, raw.find("\r\n"));
    size_t consumed = header_end + 4;
    bool run_handler = false;
    bool parse_failed = false;
    if (!ParseRequestLine(request_line, &request)) {
      response.status = 400;
      response.body = "bad request\n";
      parse_failed = true;  // Framing unknown: must close after answering.
    } else {
      ParseHeaderBlock(headers, &request.headers);
      if (request.method == "POST" || request.method == "PUT") {
        // Read the Content-Length body (the rest may already be
        // buffered).
        const std::string length_value =
            request.HeaderOr("content-length", "");
        const long content_length =
            length_value.empty() ? -1 : std::atol(length_value.c_str());
        const size_t body_start = header_end + 4;
        if (content_length < 0 ||
            static_cast<size_t>(content_length) > kMaxRequestBytes) {
          response.status = 400;
          response.body = "POST/PUT requires a bounded Content-Length\n";
          parse_failed = true;
        } else {
          while (raw.size() - body_start <
                 static_cast<size_t>(content_length)) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
              if (n < 0 && errno == EINTR) continue;
              return;  // Body never arrived; nothing sensible to answer.
            }
            raw.append(chunk, static_cast<size_t>(n));
          }
          request.body =
              raw.substr(body_start, static_cast<size_t>(content_length));
          consumed = body_start + static_cast<size_t>(content_length);
          run_handler = true;
        }
      } else if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.body = "only GET, HEAD, POST, and PUT are supported\n";
      } else {
        run_handler = true;
      }
    }
    // Keep-alive is opt-in per request: only an explicit header keeps
    // the connection, so every pre-existing client (curl, the prober,
    // one-shot HttpGet) still gets the historical one-request behavior.
    std::string connection_value = request.HeaderOr("connection", "");
    for (char& c : connection_value) c = static_cast<char>(std::tolower(c));
    const bool keep_alive = !parse_failed && connection_value == "keep-alive";
    if (run_handler) {
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response = HttpResponse{};
        response.status = 500;
        response.body = std::string("handler error: ") + e.what() + "\n";
      } catch (...) {
        response = HttpResponse{};
        response.status = 500;
        response.body = "handler error\n";
      }
    }
    if (MetricsEnabled()) {
      static Counter& requests = GetCounter("http.requests");
      requests.Add(1);
      if (!first_request) {
        static Counter& reuses = GetCounter("http.keepalive_reuses");
        reuses.Add(1);
      }
    }

    char header[256];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.1 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: %s\r\n"
                  "\r\n",
                  response.status, StatusText(response.status),
                  response.content_type.c_str(), response.body.size(),
                  keep_alive ? "keep-alive" : "close");
    if (!SendAll(fd, header, std::strlen(header))) return;
    if (request.method != "HEAD" &&
        !SendAll(fd, response.body.data(), response.body.size())) {
      return;
    }
    if (!keep_alive) return;
    raw.erase(0, consumed);
    first_request = false;
  }
}

HttpClient::~HttpClient() {
  for (const auto& [key, conn] : pool_) ::close(conn.fd);
}

size_t HttpClient::pooled_connections() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_.size();
}

int HttpClient::TakePooled(const std::string& host, int port) {
  int stale_fd = -1;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    auto it = pool_.find({host, port});
    if (it == pool_.end()) return -1;
    // A connection idled past the server's close window is almost
    // certainly dead on arrival: reusing it pays a doomed send plus the
    // stale-retry reconnect. Close it here and let the caller open a
    // fresh connection directly.
    if (options_.keepalive_max_idle_ms > 0 &&
        SteadyNowMs() - it->second.last_use_ms >
            options_.keepalive_max_idle_ms) {
      stale_fd = it->second.fd;
    } else {
      fd = it->second.fd;
    }
    pool_.erase(it);
  }
  if (stale_fd >= 0) {
    ::close(stale_fd);
    if (MetricsEnabled()) {
      static Counter& avoided = GetCounter("http.keepalive_stale_avoided");
      avoided.Add(1);
    }
  }
  return fd;
}

void HttpClient::ReturnPooled(const std::string& host, int port, int fd) {
  const PooledConnection conn{fd, SteadyNowMs()};
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    // One pooled connection per peer: if a concurrent request already
    // parked one, the younger connection is the one we drop.
    if (pool_.emplace(std::make_pair(host, port), conn).second) return;
  }
  ::close(fd);
}

HttpClient::Result HttpClient::Get(const std::string& host, int port,
                                   const std::string& target, int timeout_ms,
                                   const HttpHeaderList& extra_headers) {
  return Fetch(host, port, target, "GET", "", "", timeout_ms, extra_headers);
}

HttpClient::Result HttpClient::Post(const std::string& host, int port,
                                    const std::string& target,
                                    const std::string& content_type,
                                    const std::string& request_body,
                                    int timeout_ms,
                                    const HttpHeaderList& extra_headers) {
  return Fetch(host, port, target, "POST", content_type, request_body,
               timeout_ms, extra_headers);
}

namespace {

/// One request/response exchange on an already-connected fd. On success
/// fills status/body and sets `poolable` when the response was
/// Content-Length framed AND advertised keep-alive; on failure fills
/// `error` (the caller decides whether a failure on a REUSED connection
/// warrants a fresh-connection retry).
bool ExchangeOnFd(int fd, const std::string& request, bool* poolable,
                  int* status, std::string* body, std::string* error) {
  *poolable = false;
  if (!SendAll(fd, request.data(), request.size())) {
    *error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  std::string raw;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while ((header_end = raw.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *error = errno == EAGAIN || errno == EWOULDBLOCK
                   ? "read timeout"
                   : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *error = "peer closed before response headers";
      return false;
    }
    raw.append(chunk, static_cast<size_t>(n));
  }

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (raw.rfind("HTTP/1.", 0) != 0) {
    *error = "malformed response";
    return false;
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    *error = "malformed status line";
    return false;
  }
  const int parsed_status = std::atoi(raw.c_str() + sp + 1);
  if (parsed_status < 100) {
    *error = "malformed status code";
    return false;
  }
  const std::string headers = raw.substr(0, header_end);
  const size_t body_start = header_end + 4;
  const long content_length = ContentLength(headers);
  if (content_length >= 0) {
    // Framed response: read exactly the advertised body, leaving the
    // connection positioned at the next response — reusable.
    while (raw.size() - body_start < static_cast<size_t>(content_length)) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        *error = n == 0 ? "peer closed mid-body"
                        : (errno == EAGAIN || errno == EWOULDBLOCK
                               ? "read timeout"
                               : std::string("recv: ") +
                                     std::strerror(errno));
        return false;
      }
      raw.append(chunk, static_cast<size_t>(n));
    }
    *body = raw.substr(body_start, static_cast<size_t>(content_length));
    *poolable = HeaderEquals(headers, "connection", "keep-alive");
  } else {
    // Unframed: the peer delimits the body by closing — drain to EOF.
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        *error = errno == EAGAIN || errno == EWOULDBLOCK
                     ? "read timeout"
                     : std::string("recv: ") + std::strerror(errno);
        return false;
      }
      if (n == 0) break;
      raw.append(chunk, static_cast<size_t>(n));
    }
    *body = raw.substr(body_start);
  }
  *status = parsed_status;
  return true;
}

}  // namespace

HttpClient::Result HttpClient::Fetch(const std::string& host, int port,
                                     const std::string& target,
                                     const char* method,
                                     const std::string& content_type,
                                     const std::string& request_body,
                                     int timeout_ms,
                                     const HttpHeaderList& extra_headers) {
  Result result;
  HttpClientOptions options = options_;
  if (timeout_ms > 0) {
    options.connect_timeout_ms =
        std::min(options.connect_timeout_ms, timeout_ms);
    options.read_timeout_ms = std::min(options.read_timeout_ms, timeout_ms);
  }

  std::string request =
      std::string(method) + " " + target + " HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: " +
      (options_.keep_alive ? "keep-alive" : "close") + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  if (std::strcmp(method, "POST") == 0) {
    request += "Content-Type: " +
               (content_type.empty() ? "application/octet-stream"
                                     : content_type) +
               "\r\nContent-Length: " + std::to_string(request_body.size()) +
               "\r\n";
  }
  request += "\r\n";
  request += request_body;

  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = false;
    int fd = -1;
    if (options_.keep_alive) {
      fd = TakePooled(host, port);
      reused = fd >= 0;
    }
    if (fd < 0) {
      fd = ConnectWithTimeout(host, port, options, &result.error);
      if (fd < 0) return result;
    } else {
      // The pooled fd carries the timeouts of whichever call created
      // it; re-arm for this call's budget.
      SetSocketTimeoutsMs(fd, options.read_timeout_ms);
    }
    bool poolable = false;
    std::string error;
    if (ExchangeOnFd(fd, request, &poolable, &result.status, &result.body,
                     &error)) {
      if (options_.keep_alive && poolable) {
        ReturnPooled(host, port, fd);
      } else {
        ::close(fd);
      }
      result.ok = true;
      result.error.clear();
      return result;
    }
    ::close(fd);
    if (!reused) {
      result.error = error;
      return result;
    }
    // The reused connection was stale (closed or wedged since it was
    // pooled): retry exactly once on a fresh connection.
  }
  return result;
}

bool HttpGet(const std::string& host, int port, const std::string& target,
             int* status, std::string* body) {
  HttpClient client;
  const HttpClient::Result result = client.Get(host, port, target);
  if (!result.ok) return false;
  if (status != nullptr) *status = result.status;
  if (body != nullptr) *body = result.body;
  return true;
}

}  // namespace isrec::obs

#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace isrec::obs {
namespace {

// Caps one request's header block; admin requests are a few hundred
// bytes, so anything larger is garbage or abuse.
constexpr size_t kMaxRequestBytes = 16 * 1024;
constexpr int kSocketTimeoutS = 5;

void SetSocketTimeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kSocketTimeoutS;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, swallowing SIGPIPE (the peer may hang up).
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

char HexNibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<char>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<char>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<char>(c - 'A' + 10);
  return -1;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const char hi = HexNibble(s[i + 1]);
      const char lo = HexNibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

/// Parses "GET /path?a=1&b=2 HTTP/1.1" into `out`; false on malformed
/// request lines (no two spaces, empty path, ...).
bool ParseRequestLine(const std::string& line, HttpRequest* out) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  out->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t qmark = target.find('?');
  out->path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string::npos) {
    std::string qs = target.substr(qmark + 1);
    size_t pos = 0;
    while (pos <= qs.size()) {
      size_t amp = qs.find('&', pos);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(pos, amp - pos);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          out->query[UrlDecode(pair)] = "";
        } else {
          out->query[UrlDecode(pair.substr(0, eq))] =
              UrlDecode(pair.substr(eq + 1));
        }
      }
      pos = amp + 1;
    }
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(const std::string& bind_address, int port,
                       HttpHandler handler) {
  if (listen_fd_ >= 0) return false;  // Already started.
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "[obs] http: socket() failed: %s\n",
                 std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "[obs] http: bad bind address '%s'\n",
                 bind_address.c_str());
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "[obs] http: cannot bind %s:%d: %s\n",
                 bind_address.c_str(), port, std::strerror(errno));
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    std::fprintf(stderr, "[obs] http: listen() failed: %s\n",
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept() (which then fails and exits
  // the loop); close after the join so the fd can't be reused while the
  // serve thread still references it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::ServeLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (EINVAL) or broken: stop serving.
    }
    SetSocketTimeouts(fd);
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string raw;
  char chunk[4096];
  // Headers only — admin endpoints are GET, bodies are ignored.
  while (raw.find("\r\n\r\n") == std::string::npos) {
    if (raw.size() > kMaxRequestBytes) return;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Timeout or hangup before a full request arrived.
    }
    raw.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse response;
  HttpRequest request;
  const std::string request_line = raw.substr(0, raw.find("\r\n"));
  if (!ParseRequestLine(request_line, &request)) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse{};
      response.status = 500;
      response.body = std::string("handler error: ") + e.what() + "\n";
    } catch (...) {
      response = HttpResponse{};
      response.status = 500;
      response.body = "handler error\n";
    }
  }
  if (MetricsEnabled()) {
    static Counter& requests = GetCounter("http.requests");
    requests.Add(1);
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  if (!SendAll(fd, header, std::strlen(header))) return;
  if (request.method != "HEAD") {
    SendAll(fd, response.body.data(), response.body.size());
  }
}

bool HttpGet(const std::string& host, int port, const std::string& target,
             int* status, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  SetSocketTimeouts(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  char request[512];
  std::snprintf(request, sizeof(request),
                "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n",
                target.c_str(), host.c_str());
  if (!SendAll(fd, request, std::strlen(request))) {
    ::close(fd);
    return false;
  }

  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (raw.rfind("HTTP/1.", 0) != 0) return false;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return false;
  const int parsed_status = std::atoi(raw.c_str() + sp + 1);
  if (parsed_status < 100) return false;
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (status != nullptr) *status = parsed_status;
  if (body != nullptr) *body = raw.substr(header_end + 4);
  return true;
}

}  // namespace isrec::obs

#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace isrec::obs {
namespace {

/// One thread's "what am I doing" stack. Every slot is an atomic so the
/// sampler can read a stack the owner is concurrently pushing/popping
/// without locks: a momentarily inconsistent read costs one slightly
/// wrong sample, never a data race (all pointers are static string
/// literals, so any value read is safe to dereference).
struct FrameStack {
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[kProfileMaxDepth] = {};
  /// Set by the owning thread's TLS destructor; the sampler skips dead
  /// stacks and the registry prunes them once quiescent.
  std::atomic<bool> dead{false};
};

/// Content-based path ordering: two call sites spelling the same span
/// name in different translation units get distinct literal pointers but
/// must fold into one line.
struct PathLess {
  bool operator()(const std::vector<const char*>& a,
                  const std::vector<const char*>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = std::strcmp(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

using PathCounts = std::map<std::vector<const char*>, uint64_t, PathLess>;

// Leaked (never destroyed) for the same static-destruction reason as the
// trace buffers: the ISREC_PROFILE exit flush runs after main.
struct ProfState {
  std::mutex mutex;  // Registry + sampler lifecycle.
  std::vector<std::shared_ptr<FrameStack>> stacks;
  std::thread sampler;
  bool running = false;
  int hz = 0;
  /// /profilez windows currently borrowing the sampler, and whether the
  /// running sampler was started by a window (auto-stopped at zero) or
  /// explicitly (kept running).
  int windows = 0;
  bool auto_started = false;
  std::condition_variable stop_cv;
  bool stop = false;

  std::mutex agg_mutex;  // Aggregated samples.
  PathCounts counts;
  uint64_t samples = 0;
  uint64_t idle_samples = 0;
};

ProfState& State() {
  static ProfState* state = new ProfState();
  return *state;
}

thread_local FrameStack* t_frames = nullptr;
thread_local bool t_frames_dead = false;

/// Registers the calling thread's stack; the holder's destructor marks
/// it dead and detaches the raw TLS pointers so late allocations during
/// thread teardown can never touch freed profiler state.
struct FrameStackHolder {
  std::shared_ptr<FrameStack> stack;
  ~FrameStackHolder() {
    t_frames = nullptr;
    t_frames_dead = true;
    if (stack != nullptr) stack->dead.store(true, std::memory_order_release);
  }
};

FrameStack& LocalFrames() {
  thread_local FrameStackHolder holder;
  if (holder.stack == nullptr) {
    holder.stack = std::make_shared<FrameStack>();
    ProfState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.stacks.push_back(holder.stack);
  }
  return *holder.stack;
}

const char* const kIdleFrame = "(idle)";
const char* const kTruncatedFrame = "(truncated)";

/// One sampler tick: fold every live thread's current stack into the
/// aggregate. Scratch vectors are reused across ticks.
void SampleOnce(std::vector<std::shared_ptr<FrameStack>>& stacks_scratch,
                std::vector<const char*>& path_scratch) {
  ProfState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    // Prune quiescent dead stacks while copying (cheap: few threads).
    auto& stacks = state.stacks;
    stacks.erase(std::remove_if(stacks.begin(), stacks.end(),
                                [](const std::shared_ptr<FrameStack>& s) {
                                  return s->dead.load(
                                             std::memory_order_acquire) &&
                                         s->depth.load(
                                             std::memory_order_acquire) == 0;
                                }),
                 stacks.end());
    stacks_scratch = stacks;
  }
  std::lock_guard<std::mutex> lock(state.agg_mutex);
  for (const auto& stack : stacks_scratch) {
    if (stack->dead.load(std::memory_order_acquire)) continue;
    const uint32_t depth = stack->depth.load(std::memory_order_acquire);
    ++state.samples;
    if (depth == 0) {
      ++state.idle_samples;
      path_scratch.assign(1, kIdleFrame);
    } else {
      const uint32_t stored =
          std::min(depth, static_cast<uint32_t>(kProfileMaxDepth));
      path_scratch.clear();
      for (uint32_t i = 0; i < stored; ++i) {
        const char* frame = stack->frames[i].load(std::memory_order_acquire);
        // A frame can read null for one instant mid-push; skip it.
        if (frame != nullptr) path_scratch.push_back(frame);
      }
      if (depth > static_cast<uint32_t>(kProfileMaxDepth)) {
        path_scratch.push_back(kTruncatedFrame);
      }
      if (path_scratch.empty()) path_scratch.push_back(kIdleFrame);
    }
    ++state.counts[path_scratch];
  }
}

void SamplerLoop(int hz) {
  ProfState& state = State();
  const auto period = std::chrono::nanoseconds(1000000000ll / hz);
  std::vector<std::shared_ptr<FrameStack>> stacks_scratch;
  std::vector<const char*> path_scratch;
  auto next = std::chrono::steady_clock::now() + period;
  std::unique_lock<std::mutex> lock(state.mutex);
  while (!state.stop) {
    if (state.stop_cv.wait_until(lock, next, [&state] { return state.stop; })) {
      break;
    }
    lock.unlock();
    SampleOnce(stacks_scratch, path_scratch);
    lock.lock();
    next += period;
    // A long scheduler stall must not turn into a burst of make-up
    // samples (each would double-count the same stalled stacks).
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + period;
  }
}

void StartLocked(ProfState& state, int hz) {
  state.hz = std::clamp(hz, 1, 10000);
  state.stop = false;
  state.running = true;
  state.sampler = std::thread([&state] { SamplerLoop(state.hz); });
  internal::SetSpanHook(internal::kSpanHookProfile, true);
}

void StopLocked(ProfState& state, std::unique_lock<std::mutex>& lock) {
  internal::SetSpanHook(internal::kSpanHookProfile, false);
  state.stop = true;
  state.running = false;
  std::thread sampler = std::move(state.sampler);
  state.stop_cv.notify_all();
  lock.unlock();
  if (sampler.joinable()) sampler.join();
  lock.lock();
}

ProfileSnapshot RenderSnapshot(uint64_t samples, uint64_t idle, int hz,
                               const PathCounts& counts) {
  ProfileSnapshot snapshot;
  snapshot.samples = samples;
  snapshot.idle_samples = idle;
  snapshot.hz = hz;
  snapshot.stacks.reserve(counts.size());
  for (const auto& [path, count] : counts) {
    if (count == 0) continue;
    snapshot.stacks.push_back({path, count});
  }
  std::stable_sort(snapshot.stacks.begin(), snapshot.stacks.end(),
                   [](const ProfileStack& a, const ProfileStack& b) {
                     return a.count > b.count;
                   });
  return snapshot;
}

std::string JsonEscape(const char* s) {
  std::string out = "\"";
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  out.push_back('"');
  return out;
}

// ISREC_PROFILE=path.folded: sampler on from process start, collapsed
// stacks written at exit (mirror of ISREC_TRACE in obs/trace.cc).
struct ProfileEnvInit {
  std::string out_path;
  ProfileEnvInit() {
    if (const char* env = std::getenv("ISREC_PROFILE");
        env != nullptr && env[0] != '\0') {
      out_path = env;
      StartProfiler();
    }
  }
  ~ProfileEnvInit() {
    if (out_path.empty()) return;
    StopProfiler();
    if (WriteProfile(out_path)) {
      std::fprintf(stderr, "[obs] profile written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "[obs] cannot write profile to %s\n",
                   out_path.c_str());
    }
  }
} g_profile_env_init;

}  // namespace

namespace internal {

bool PushProfileFrame(const char* name) {
  if (t_frames_dead) return false;
  if (t_frames == nullptr) t_frames = &LocalFrames();
  FrameStack& stack = *t_frames;
  const uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth < static_cast<uint32_t>(kProfileMaxDepth)) {
    stack.frames[depth].store(name, std::memory_order_release);
  }
  stack.depth.store(depth + 1, std::memory_order_release);
  return true;
}

void PopProfileFrame() {
  FrameStack& stack = *t_frames;  // Non-null: a push always precedes.
  const uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth > 0) stack.depth.store(depth - 1, std::memory_order_release);
}

const char* CurrentProfileFrame() {
  const FrameStack* stack = t_frames;
  if (stack == nullptr) return nullptr;
  uint32_t depth = stack->depth.load(std::memory_order_acquire);
  if (depth == 0) return nullptr;
  depth = std::min(depth, static_cast<uint32_t>(kProfileMaxDepth));
  return stack->frames[depth - 1].load(std::memory_order_acquire);
}

}  // namespace internal

bool ProfilerRunning() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.running;
}

void StartProfiler(int hz) {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.running) {
    state.auto_started = false;  // Explicit start pins the sampler on.
    return;
  }
  state.auto_started = false;
  StartLocked(state, hz);
}

void StopProfiler() {
  ProfState& state = State();
  std::unique_lock<std::mutex> lock(state.mutex);
  if (!state.running) return;
  StopLocked(state, lock);
}

void ClearProfile() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.agg_mutex);
  state.counts.clear();
  state.samples = 0;
  state.idle_samples = 0;
}

ProfileSnapshot SnapshotProfile() {
  ProfState& state = State();
  int hz;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    hz = state.hz;
  }
  std::lock_guard<std::mutex> lock(state.agg_mutex);
  return RenderSnapshot(state.samples, state.idle_samples, hz, state.counts);
}

ProfileSnapshot DiffProfile(const ProfileSnapshot& earlier,
                            const ProfileSnapshot& later) {
  PathCounts counts;
  for (const ProfileStack& stack : later.stacks) {
    counts[stack.frames] = stack.count;
  }
  for (const ProfileStack& stack : earlier.stacks) {
    auto it = counts.find(stack.frames);
    if (it == counts.end()) continue;
    it->second -= std::min(it->second, stack.count);
  }
  ProfileSnapshot diff = RenderSnapshot(
      later.samples - std::min(later.samples, earlier.samples),
      later.idle_samples - std::min(later.idle_samples, earlier.idle_samples),
      later.hz, counts);
  return diff;
}

ProfileSnapshot CollectProfileWindow(double seconds, int hz) {
  ProfState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.running) {
      state.auto_started = true;
      StartLocked(state, hz);
    }
    ++state.windows;
  }
  const ProfileSnapshot before = SnapshotProfile();
  const double clamped = std::clamp(seconds, 0.01, 60.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(clamped));
  const ProfileSnapshot after = SnapshotProfile();
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    --state.windows;
    if (state.windows == 0 && state.auto_started && state.running) {
      StopLocked(state, lock);
    }
  }
  return DiffProfile(before, after);
}

std::string FoldedStacksText(const ProfileSnapshot& snapshot) {
  std::string out;
  for (const ProfileStack& stack : snapshot.stacks) {
    for (size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) out.push_back(';');
      out += stack.frames[i];
    }
    out.push_back(' ');
    out += std::to_string(stack.count);
    out.push_back('\n');
  }
  return out;
}

std::string ProfileSummaryJson(const ProfileSnapshot& snapshot) {
  std::string out = "{\"samples\": " + std::to_string(snapshot.samples);
  out += ", \"idle_samples\": " + std::to_string(snapshot.idle_samples);
  out += ", \"hz\": " + std::to_string(snapshot.hz);
  out += ", \"distinct_stacks\": " + std::to_string(snapshot.stacks.size());
  out += ", \"stacks\": [";
  // Top stacks only: the folded text is the lossless export.
  constexpr size_t kMaxJsonStacks = 100;
  const size_t n = std::min(snapshot.stacks.size(), kMaxJsonStacks);
  for (size_t s = 0; s < n; ++s) {
    const ProfileStack& stack = snapshot.stacks[s];
    out += s == 0 ? "\n" : ",\n";
    out += "{\"stack\": [";
    for (size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonEscape(stack.frames[i]);
    }
    out += "], \"count\": " + std::to_string(stack.count) + "}";
  }
  out += "\n]}";
  return out;
}

bool WriteProfile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = FoldedStacksText(SnapshotProfile());
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  return written == text.size() && std::fclose(f) == 0;
}

}  // namespace isrec::obs

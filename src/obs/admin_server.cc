#include "obs/admin_server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/heap_profiler.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "utils/logging.h"

namespace isrec::obs {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry uses
/// dotted names ("serve.requests" → "serve_requests").
std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string FormatNumber(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char kStyle[] =
    "<style>body{font-family:monospace;margin:1.5em}"
    "table{border-collapse:collapse;margin:.5em 0}"
    "td,th{border:1px solid #999;padding:2px 8px;text-align:right}"
    "th{background:#eee}td:first-child,th:first-child{text-align:left}"
    "h2{margin-top:1.2em}</style>";

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = SanitizeMetricName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + FormatNumber(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string n = SanitizeMetricName(h.name);
    out += "# TYPE " + n + " histogram\n";
    const std::vector<uint64_t> cumulative = h.CumulativeCounts();
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      out += n + "_bucket{le=\"" + FormatNumber(h.bounds[b]) + "\"} " +
             std::to_string(cumulative[b]) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.total_count) + "\n";
    out += n + "_sum " + FormatNumber(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.total_count) + "\n";
  }
  return out;
}

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)) {}

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Start() {
  if (started_) return false;
  if (!http_.Start(config_.bind, config_.port,
                   [this](const HttpRequest& r) { return Handle(r); },
                   config_.num_workers)) {
    return false;
  }
  started_ = true;
  started_ms_ = NowMs();
  stopping_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
  return true;
}

void AdminServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    stopping_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  http_.Stop();
  started_ = false;
}

int AdminServer::port() const { return http_.port(); }

void AdminServer::AddVarzSection(const std::string& key,
                                 JsonProvider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  varz_sections_.emplace_back(key, std::move(provider));
}

void AdminServer::AddStatuszSection(const std::string& title,
                                    HtmlProvider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  statusz_sections_.emplace_back(title, std::move(provider));
}

void AdminServer::SetHealthProvider(HealthProvider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  health_ = std::move(provider);
}

void AdminServer::AddHandler(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_.emplace_back(path, std::move(handler));
}

void AdminServer::SetBuildInfo(const std::string& info) {
  std::lock_guard<std::mutex> lock(mutex_);
  build_info_ = info;
}

void AdminServer::SamplerLoop() {
  const auto period = std::chrono::duration<double>(
      config_.sample_period_s > 0.0 ? config_.sample_period_s : 1.0);
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (!stopping_) {
    // Unlocked snapshot+store: the registry and aggregator have their
    // own locks, and stopping_ is only re-checked at the wait.
    lock.unlock();
    rollup_.AddSample(NowMs(), SnapshotMetrics());
    lock.lock();
    sampler_cv_.wait_for(lock, period, [this] { return stopping_; });
  }
}

HttpResponse AdminServer::Handle(const HttpRequest& request) {
  // Custom handlers are consulted before the built-ins so an embedder
  // can override a built-in page (the router replaces /tracez with its
  // stitched cross-process view).
  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [path, h] : handlers_) {
      if (path == request.path) {
        handler = h;
        break;
      }
    }
  }
  if (handler) return handler(request);
  if (request.path == "/" || request.path == "/index.html") {
    return HandleIndex();
  }
  if (request.path == "/healthz") return HandleHealthz();
  if (request.path == "/metrics") return HandleMetrics();
  if (request.path == "/varz") return HandleVarz();
  if (request.path == "/statusz") return HandleStatusz();
  if (request.path == "/tracez") return HandleTracez(request);
  if (request.path == "/profilez") return HandleProfilez(request);
  if (request.path == "/heapz") return HandleHeapz();
  if (request.path == "/admin/loglevel") return HandleLoglevel(request);
  HttpResponse response;
  response.status = 404;
  response.body = "not found: " + request.path + "\n";
  return response;
}

HttpResponse AdminServer::HandleIndex() const {
  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = std::string("<!doctype html><title>isrec admin</title>") +
                  kStyle +
                  "<h1>isrec admin</h1><ul>"
                  "<li><a href=\"/healthz\">/healthz</a> — liveness</li>"
                  "<li><a href=\"/metrics\">/metrics</a> — Prometheus text "
                  "exposition</li>"
                  "<li><a href=\"/varz\">/varz</a> — JSON snapshot</li>"
                  "<li><a href=\"/statusz\">/statusz</a> — status page "
                  "(rates, percentiles)</li>"
                  "<li><a href=\"/tracez\">/tracez</a> — recent request "
                  "timelines (<a href=\"/tracez?format=json\">json</a>)</li>"
                  "<li><a href=\"/profilez?seconds=1\">/profilez</a> — "
                  "sampling profile, folded stacks "
                  "(<a href=\"/profilez?seconds=1&amp;format=json\">json</a>)"
                  "</li>"
                  "<li><a href=\"/heapz\">/heapz</a> — heap accounting "
                  "(allocs, live bytes, top sites)</li>"
                  "<li><a href=\"/admin/loglevel\">/admin/loglevel</a> — "
                  "get/set the log level</li>"
                  "</ul>";
  return response;
}

HttpResponse AdminServer::HandleHealthz() const {
  HealthProvider health;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    health = health_;
  }
  HttpResponse response;
  if (!health) {
    response.body = "ok\n";
    return response;
  }
  const auto [healthy, detail] = health();
  response.status = healthy ? 200 : 503;
  response.body = (healthy ? "ok" : "unhealthy") +
                  (detail.empty() ? std::string() : ": " + detail) + "\n";
  return response;
}

HttpResponse AdminServer::HandleMetrics() const {
  HttpResponse response;
  // The content type Prometheus scrapers expect for text exposition.
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = PrometheusText(SnapshotMetrics());
  return response;
}

HttpResponse AdminServer::HandleVarz() const {
  std::vector<std::pair<std::string, JsonProvider>> sections;
  std::string build_info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sections = varz_sections_;
    build_info = build_info_;
  }
  std::string body = "{\n\"build_info\": " + JsonEscape(build_info) + ",\n";
  body += "\"uptime_s\": " +
          FormatNumber(static_cast<double>(NowMs() - started_ms_) / 1000.0) +
          ",\n";
  for (const auto& [key, provider] : sections) {
    body += JsonEscape(key) + ": " + provider() + ",\n";
  }
  // The trace clock reading lets a poller (the router's prober) estimate
  // this process's clock offset from the request round-trip (midpoint
  // method) and translate echoed span timestamps.
  body += "\"trace_clock_ns\": " + std::to_string(TraceClockNs()) + ",\n";
  body += "\"metrics\": " + DumpMetricsJson() + "}\n";
  HttpResponse response;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse AdminServer::HandleStatusz() const {
  std::vector<std::pair<std::string, HtmlProvider>> sections;
  std::string build_info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sections = statusz_sections_;
    build_info = build_info_;
  }
  std::string body =
      std::string("<!doctype html><title>isrec statusz</title>") + kStyle +
      "<h1>statusz</h1>";
  char line[256];
  std::snprintf(line, sizeof(line),
                "<p>build: %s<br>uptime: %.1f s<br>samples: %zu</p>",
                HtmlEscape(build_info).c_str(),
                static_cast<double>(NowMs() - started_ms_) / 1000.0,
                rollup_.sample_count());
  body += line;

  // Rolling counter rates: one row per counter, one column per window.
  const WindowView w1 = rollup_.Window(1.0);
  const WindowView w10 = rollup_.Window(10.0);
  const WindowView w60 = rollup_.Window(60.0);
  body += "<h2>Counter rates (/s)</h2>";
  if (!w1.valid && !w10.valid && !w60.valid) {
    body += "<p>warming up (&lt; 2 samples)</p>";
  } else {
    body +=
        "<table><tr><th>counter</th><th>1s</th><th>10s</th>"
        "<th>60s</th></tr>";
    const WindowView* widest = w60.valid ? &w60 : (w10.valid ? &w10 : &w1);
    for (const auto& [name, rate60] : widest->counter_rates) {
      auto rate_in = [](const WindowView& w, const std::string& n) {
        for (const auto& [cn, r] : w.counter_rates) {
          if (cn == n) return r;
        }
        return 0.0;
      };
      std::snprintf(line, sizeof(line),
                    "<tr><td>%s</td><td>%.4g</td><td>%.4g</td>"
                    "<td>%.4g</td></tr>",
                    HtmlEscape(name).c_str(),
                    w1.valid ? rate_in(w1, name) : 0.0,
                    w10.valid ? rate_in(w10, name) : 0.0,
                    w60.valid ? rate_in(w60, name) : 0.0);
      body += line;
    }
    body += "</table>";

    body += "<h2>Histogram percentiles (trailing window)</h2>";
    std::snprintf(line, sizeof(line),
                  "<table><tr><th>histogram (%.0fs window)</th><th>count</th>"
                  "<th>p50</th><th>p95</th><th>p99</th></tr>",
                  widest->seconds);
    body += line;
    for (const HistogramSnapshot& h : widest->histograms) {
      std::snprintf(line, sizeof(line),
                    "<tr><td>%s</td><td>%llu</td><td>%.4g</td><td>%.4g</td>"
                    "<td>%.4g</td></tr>",
                    HtmlEscape(h.name).c_str(),
                    static_cast<unsigned long long>(h.total_count),
                    h.Percentile(0.50), h.Percentile(0.95),
                    h.Percentile(0.99));
      body += line;
    }
    body += "</table>";
  }

  for (const auto& [title, provider] : sections) {
    body += "<h2>" + HtmlEscape(title) + "</h2>";
    body += provider();
  }
  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse AdminServer::HandleTracez(const HttpRequest& request) const {
  const std::vector<RequestTimeline> timelines = SnapshotRequestTimelines();
  HttpResponse response;
  if (request.QueryOr("format", "") == "json") {
    std::string body = "{\n\"dropped\": " +
                       std::to_string(RequestTimelineDropped()) +
                       ",\n\"timelines\": [";
    for (size_t t = 0; t < timelines.size(); ++t) {
      const RequestTimeline& tl = timelines[t];
      body += t == 0 ? "\n" : ",\n";
      body += "{\"request_id\": " + std::to_string(tl.request_id) +
              ", \"spans\": [";
      for (size_t s = 0; s < tl.spans.size(); ++s) {
        const RequestSpan& span = tl.spans[s];
        body += s == 0 ? "" : ", ";
        body += "{\"name\": " + JsonEscape(span.name) +
                ", \"start_ns\": " + std::to_string(span.start_ns) +
                ", \"dur_ns\": " + std::to_string(span.dur_ns) +
                ", \"tid\": " + std::to_string(span.tid) + "}";
      }
      body += "]}";
    }
    body += "\n]\n}\n";
    response.content_type = "application/json";
    response.body = std::move(body);
    return response;
  }

  std::string body =
      std::string("<!doctype html><title>isrec tracez</title>") + kStyle +
      "<h1>tracez</h1>";
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "<p>%zu sampled request timelines (newest first), %llu dropped "
      "spans. <a href=\"/tracez?format=json\">json</a></p>",
      timelines.size(),
      static_cast<unsigned long long>(RequestTimelineDropped()));
  body += line;
  if (!TracingEnabled() || !RequestTracingEnabled()) {
    body +=
        "<p><b>request tracing is off</b> — enable tracing and request "
        "tracing (e.g. isrec_serve --admin-port) to populate this "
        "page.</p>";
  }
  for (const RequestTimeline& tl : timelines) {
    const uint64_t t0 = tl.spans.empty() ? 0 : tl.spans.front().start_ns;
    std::snprintf(line, sizeof(line), "<h2>request %llu</h2>",
                  static_cast<unsigned long long>(tl.request_id));
    body += line;
    body +=
        "<table><tr><th>span</th><th>start (&micro;s)</th>"
        "<th>dur (&micro;s)</th><th>tid</th></tr>";
    for (const RequestSpan& span : tl.spans) {
      std::snprintf(line, sizeof(line),
                    "<tr><td>%s</td><td>%.1f</td><td>%.1f</td>"
                    "<td>%u</td></tr>",
                    HtmlEscape(span.name).c_str(),
                    static_cast<double>(span.start_ns - t0) / 1000.0,
                    static_cast<double>(span.dur_ns) / 1000.0, span.tid);
      body += line;
    }
    body += "</table>";
  }
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse AdminServer::HandleProfilez(const HttpRequest& request) const {
  // The handler blocks for the sampling window; the admin server's
  // worker pool keeps other endpoints responsive meanwhile (and with
  // num_workers == 1 a short window is still an acceptable stall for a
  // hand-driven debugging endpoint).
  double seconds = std::atof(request.QueryOr("seconds", "1").c_str());
  if (!(seconds > 0.0)) seconds = 1.0;
  seconds = std::min(seconds, 60.0);
  int hz = std::atoi(request.QueryOr("hz", "499").c_str());
  if (hz <= 0) hz = 499;
  hz = std::min(hz, 1000);
  const ProfileSnapshot snapshot = CollectProfileWindow(seconds, hz);
  HttpResponse response;
  if (request.QueryOr("format", "folded") == "json") {
    response.content_type = "application/json";
    response.body = ProfileSummaryJson(snapshot);
  } else {
    response.content_type = "text/plain; charset=utf-8";
    response.body = FoldedStacksText(snapshot);
  }
  return response;
}

HttpResponse AdminServer::HandleHeapz() const {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = heap::HeapzJson();
  return response;
}

HttpResponse AdminServer::HandleLoglevel(const HttpRequest& request) const {
  HttpResponse response;
  if (request.method == "PUT" || request.method == "POST") {
    // Level from the body ("debug\n") or from ?level=debug — whichever
    // is present; the body wins when both are.
    std::string text = request.body;
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back()))) {
      text.pop_back();
    }
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front()))) {
      text.erase(text.begin());
    }
    if (text.empty()) text = request.QueryOr("level", "");
    LogLevel level;
    if (!ParseLogLevel(text.c_str(), &level)) {
      response.status = 400;
      response.content_type = "application/json";
      response.body =
          "{\"error\": \"unknown log level\", \"got\": " + JsonEscape(text) +
          "}\n";
      return response;
    }
    SetLogLevel(level);
  }
  response.content_type = "application/json";
  response.body = std::string("{\"level\": \"") +
                  LogLevelName(GetLogLevel()) + "\"}\n";
  return response;
}

}  // namespace isrec::obs

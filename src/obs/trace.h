#ifndef ISREC_OBS_TRACE_H_
#define ISREC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace isrec::obs {

/// Scoped trace spans (DESIGN.md "Observability"): RAII markers around
/// named code regions, recorded into per-thread ring buffers and
/// exportable as chrome://tracing JSON ("Trace Event Format", complete
/// events). Controlled by ISREC_TRACE=out.json (enables tracing and
/// writes the trace at process exit) or programmatically.
///
/// Overhead contract: a span on the disabled path is one branch on one
/// relaxed atomic load in the constructor and a null check in the
/// destructor. Recording only reads the steady clock and appends to a
/// thread-local buffer, so traced code computes bitwise-identical
/// results with tracing on or off.

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

/// Nanoseconds on the steady clock since the process trace epoch.
uint64_t TraceNowNs();

/// Appends one complete span to the calling thread's ring buffer.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);
}  // namespace internal

/// True when span recording is on.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on/off process-wide.
void EnableTracing(bool on);

/// RAII span. `name` must have static storage duration (string literal):
/// the buffer stores the pointer, not a copy.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(TracingEnabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? internal::TraceNowNs() : 0) {}
  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, internal::TraceNowNs());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
};

/// Events recorded per thread before the ring buffer wraps (oldest
/// events are then overwritten and counted as dropped).
inline constexpr size_t kTraceRingCapacity = 1 << 16;

/// Total events currently buffered across all threads.
size_t TraceEventCount();

/// Spans overwritten by ring-buffer wrap-around since the last Clear.
uint64_t TraceDroppedCount();

/// Discards every buffered event (thread ids are kept).
void ClearTrace();

/// Renders all buffered events as chrome://tracing JSON ({"traceEvents":
/// [...]} object form). Events are sorted by (tid, start) so the output
/// is deterministic modulo the timing values themselves.
std::string DumpChromeTraceJson();

/// Writes DumpChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace isrec::obs

#define ISREC_OBS_CONCAT_INNER(a, b) a##b
#define ISREC_OBS_CONCAT(a, b) ISREC_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a complete event named `name` (a string
/// literal).
#define ISREC_TRACE_SPAN(name) \
  ::isrec::obs::ScopedSpan ISREC_OBS_CONCAT(isrec_trace_span_, __LINE__)(name)

#endif  // ISREC_OBS_TRACE_H_

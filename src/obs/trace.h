#ifndef ISREC_OBS_TRACE_H_
#define ISREC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace isrec::obs {

/// Scoped trace spans (DESIGN.md "Observability"): RAII markers around
/// named code regions, recorded into per-thread ring buffers and
/// exportable as chrome://tracing JSON ("Trace Event Format", complete
/// events). Controlled by ISREC_TRACE=out.json (enables tracing and
/// writes the trace at process exit) or programmatically.
///
/// Spans may optionally carry a request context (a nonzero request_id,
/// DESIGN.md "Admin server & request tracing"): such spans additionally
/// feed a bounded per-request timeline index so a single request's
/// enqueue→dequeue→score→respond path can be reconstructed live from
/// the admin server's /tracez endpoint.
///
/// Overhead contract: a span on the disabled path is one branch on one
/// relaxed atomic load in the constructor and a null check in the
/// destructor. Recording only reads the steady clock and appends to a
/// thread-local buffer, so traced code computes bitwise-identical
/// results with tracing on or off.

namespace internal {
/// Bitmask of the consumers a ScopedSpan must feed. One relaxed load of
/// this mask is the ENTIRE disabled-path cost of a span: tracing (ring
/// buffers + /tracez) and the sampling profiler (obs/profiler.h) share
/// the single branch instead of each adding one.
inline constexpr uint32_t kSpanHookTrace = 1u << 0;
inline constexpr uint32_t kSpanHookProfile = 1u << 1;
extern std::atomic<uint32_t> g_span_hooks;

/// Sets/clears one kSpanHook* bit.
void SetSpanHook(uint32_t bit, bool on);

/// Nanoseconds on the steady clock since the process trace epoch.
uint64_t TraceNowNs();

/// Appends one complete span to the calling thread's ring buffer.
/// A nonzero request_id tags the span with its request context (and,
/// when request tracing is on, indexes it into the request timelines).
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t request_id = 0);

/// Pushes `name` (static storage) onto the calling thread's profiler
/// frame stack (obs/profiler.cc). Returns false when the push was not
/// performed (thread is shutting down) so the caller skips the pop.
bool PushProfileFrame(const char* name);
void PopProfileFrame();
}  // namespace internal

/// True when span recording is on.
inline bool TracingEnabled() {
  return (internal::g_span_hooks.load(std::memory_order_relaxed) &
          internal::kSpanHookTrace) != 0;
}

/// Turns span recording on/off process-wide.
void EnableTracing(bool on);

/// RAII span. `name` must have static storage duration (string literal):
/// the buffer stores the pointer, not a copy. A nonzero `request_id`
/// attaches the span to that request's timeline (see RecordRequestSpan).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, uint64_t request_id = 0) {
    const uint32_t hooks =
        internal::g_span_hooks.load(std::memory_order_relaxed);
    if (hooks == 0) return;
    if ((hooks & internal::kSpanHookTrace) != 0) {
      name_ = name;
      start_ns_ = internal::TraceNowNs();
      request_id_ = request_id;
    }
    if ((hooks & internal::kSpanHookProfile) != 0) {
      pushed_ = internal::PushProfileFrame(name);
    }
  }
  ~ScopedSpan() {
    if (pushed_) internal::PopProfileFrame();
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_ns_, internal::TraceNowNs(),
                           request_id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t request_id_ = 0;
  bool pushed_ = false;
};

/// Events recorded per thread before the ring buffer wraps (oldest
/// events are then overwritten and counted as dropped).
inline constexpr size_t kTraceRingCapacity = 1 << 16;

/// Total events currently buffered across all threads.
size_t TraceEventCount();

/// Spans overwritten by ring-buffer wrap-around since the last Clear.
uint64_t TraceDroppedCount();

/// Discards every buffered event (thread ids are kept).
void ClearTrace();

/// Renders all buffered events as chrome://tracing JSON ({"traceEvents":
/// [...]} object form). Events are sorted by (tid, start) so the output
/// is deterministic modulo the timing values themselves.
std::string DumpChromeTraceJson();

/// Writes DumpChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path);

// -- Per-request timelines ----------------------------------------------
//
// A bounded index from request_id to the spans recorded for it, so the
// admin server's /tracez can reconstruct a single request's
// enqueue→queued→score→respond path while the process runs. Capacity is
// fixed (kRequestTimelineSlots slots of kRequestTimelineSpanCap spans,
// per-slot mutexes): a newer sampled request evicts the older one that
// hashes to its slot, and spans that can't be stored (evicted timeline,
// full slot) are counted, never blocked on.

/// Slots in the request-timeline index (concurrent, each own mutex).
inline constexpr size_t kRequestTimelineSlots = 128;
/// Max spans retained per request timeline.
inline constexpr size_t kRequestTimelineSpanCap = 64;

/// One span inside a request timeline.
struct RequestSpan {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint32_t tid;
};

/// All spans captured for one sampled request, in record order.
struct RequestTimeline {
  uint64_t request_id = 0;
  std::vector<RequestSpan> spans;
};

/// True when request-timeline indexing is on (requires TracingEnabled()
/// for spans to be recorded at all).
bool RequestTracingEnabled();

/// Turns request-timeline indexing on/off process-wide.
void EnableRequestTracing(bool on);

/// Index every n-th request id (ids where (id-1) % n == 0). n <= 1
/// samples every request (the default).
void SetRequestSampleEvery(uint64_t n);

/// Reads the trace clock (nanoseconds since the process trace epoch).
/// For callers that need to split one region into multiple spans.
uint64_t TraceClockNs();

/// Records a completed span for `request_id`: always into the calling
/// thread's ring buffer (like ISREC_TRACE_SPAN), and additionally into
/// the request-timeline index when request tracing is on and the id is
/// sampled. No-op when tracing is disabled or request_id is 0.
void RecordRequestSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                       uint64_t request_id);

/// Copies the currently indexed timelines, newest request first. Spans
/// within a timeline are sorted by start time.
std::vector<RequestTimeline> SnapshotRequestTimelines();

/// Copies the timeline indexed for one request id (spans start-sorted).
/// False when the id is unsampled, was never indexed, or has been
/// evicted by a newer request. Used by the recommend endpoint to echo a
/// replica's spans back to the router for cross-process stitching.
bool FindRequestTimeline(uint64_t request_id, RequestTimeline* out);

/// Spans that could not be indexed since the last Clear (timeline
/// evicted, span cap reached, or unsampled slot conflict).
uint64_t RequestTimelineDropped();

/// Empties the timeline index and zeroes the dropped counter.
void ClearRequestTimelines();

}  // namespace isrec::obs

#define ISREC_OBS_CONCAT_INNER(a, b) a##b
#define ISREC_OBS_CONCAT(a, b) ISREC_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a complete event named `name` (a string
/// literal).
#define ISREC_TRACE_SPAN(name) \
  ::isrec::obs::ScopedSpan ISREC_OBS_CONCAT(isrec_trace_span_, __LINE__)(name)

/// Same, tagged with a request id so the span joins that request's
/// timeline (admin /tracez).
#define ISREC_TRACE_SPAN_REQ(name, request_id)                             \
  ::isrec::obs::ScopedSpan ISREC_OBS_CONCAT(isrec_trace_span_, __LINE__)( \
      name, request_id)

#endif  // ISREC_OBS_TRACE_H_

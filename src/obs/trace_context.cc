#include "obs/trace_context.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

namespace isrec::obs {
namespace {

/// splitmix64 finalizer — cheap, full-period, and good enough avalanche
/// that sequential counter inputs come out looking independent.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ProcessSeed() {
  static const uint64_t seed = [] {
    std::random_device rd;
    const uint64_t entropy =
        (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd());
    const uint64_t clock_bits = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return entropy ^ SplitMix64(clock_bits);
  }();
  return seed;
}

}  // namespace

uint64_t NewTraceId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  // fetch_add guarantees distinct counter values, so the only way to
  // loop is the 1-in-2^64 zero output.
  do {
    id = SplitMix64(ProcessSeed() + counter.fetch_add(1));
  } while (id == 0);
  return id;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

bool ParseTraceId(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 16);
  if (errno != 0 || end != text.c_str() + text.size() || value == 0) {
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

TraceContext TraceContextFromHeaders(const HttpRequest& request) {
  TraceContext context;
  uint64_t trace_id = 0;
  if (!ParseTraceId(request.HeaderOr("x-isrec-trace", ""), &trace_id)) {
    return context;  // Inactive: untraced request.
  }
  context.trace_id = trace_id;
  const std::string hop = request.HeaderOr("x-isrec-trace-hop", "");
  context.hop = hop.empty() ? 0 : std::atoi(hop.c_str());
  if (context.hop < 0) context.hop = 0;
  context.echo = request.HeaderOr("x-isrec-trace-echo", "") == "1";
  return context;
}

void AppendTraceHeaders(const TraceContext& context, HttpHeaderList* headers) {
  if (!context.active()) return;
  headers->emplace_back(kTraceHeader, FormatTraceId(context.trace_id));
  headers->emplace_back(kTraceHopHeader, std::to_string(context.hop));
  if (context.echo) headers->emplace_back(kTraceEchoHeader, "1");
}

}  // namespace isrec::obs

#ifndef ISREC_OBS_METRICS_H_
#define ISREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace isrec::obs {

/// Process-wide metrics (DESIGN.md "Observability"). Three instrument
/// kinds — Counter, Gauge, Histogram — live in a single named registry;
/// call sites hold stable references obtained once (registration takes a
/// mutex, every later operation is lock-free sharded atomics).
///
/// Overhead contract: instrumented code guards every record with
/// `if (obs::MetricsEnabled())`, so the disabled path is exactly one
/// branch on one relaxed atomic load. Recording never perturbs the
/// numerics of the code it measures — it only reads clocks and bumps
/// atomics — so results are bitwise identical with metrics on or off
/// (enforced by obs_test).

namespace internal {
extern std::atomic<bool> g_metrics_enabled;

/// Number of independent atomic shards per instrument. Each thread is
/// assigned one shard round-robin; values are summed at snapshot time.
inline constexpr int kShards = 16;

/// Round-robin shard of the calling thread.
int ThreadShard();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// True when metric recording is on (ISREC_METRICS=1 or EnableMetrics).
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns metric recording on/off process-wide.
void EnableMetrics(bool on);

/// Monotonically increasing event count. Add is a relaxed fetch_add on
/// the calling thread's shard; Value sums the shards (so concurrent
/// increments from any number of threads are counted exactly).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  internal::ShardCell shards_[internal::kShards];
};

/// Last-written instantaneous value (queue depth, loss, ...). A single
/// atomic double: gauges are low-frequency, sharding buys nothing.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds, with an
/// implicit overflow bucket above the last. Observe finds the bucket by
/// binary search and bumps the calling thread's shard, so concurrent
/// observations sum exactly. Percentiles are estimated from the bucket
/// counts with linear interpolation inside the bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket totals, length bounds().size() + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  /// [shard][bucket] counts, plus one per-shard sum cell (double bits).
  internal::ShardCell* cells_;
  int num_buckets_;
};

/// `count` exponentially spaced upper bounds starting at `start`
/// (start, start*factor, ...). The conventional shape for latencies.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
/// `count` linearly spaced upper bounds (start, start+width, ...).
std::vector<double> LinearBuckets(double start, double width, int count);
/// Default latency buckets: 1us .. ~17s, factor 2 (25 buckets).
const std::vector<double>& LatencyBucketsMs();

/// Finds or creates an instrument. The returned reference is stable for
/// the process lifetime; typical call sites cache it in a function-local
/// static. For histograms, the first registration fixes the bounds and
/// later calls ignore theirs.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name,
                        const std::vector<double>& bounds);

// -- Snapshots & exporters ----------------------------------------------

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1, overflow last.
  uint64_t total_count = 0;
  double sum = 0.0;

  double Mean() const;
  /// Estimated value at quantile p in [0, 1]; 0 when empty. Values in
  /// the overflow bucket clamp to the last finite bound.
  double Percentile(double p) const;
  /// Running totals per bucket, length counts.size(): element i is the
  /// number of observations <= bounds[i] (last element == total_count,
  /// the implicit +Inf bucket). The Prometheus exposition convention.
  std::vector<uint64_t> CumulativeCounts() const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Consistent name-sorted view of every registered instrument.
MetricsSnapshot SnapshotMetrics();

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
/// Deterministic modulo the recorded values: fixed key order (sorted)
/// and fixed float formatting.
std::string DumpMetricsJson();

/// Plain-text two-column rendering for terminals; histograms show
/// count/mean/p50/p95/p99.
std::string DumpMetricsTable();

/// Writes DumpMetricsJson() to `path`; false on I/O failure.
bool WriteMetricsJson(const std::string& path);

/// Zeroes every registered instrument (tests and benchmark harnesses).
void ResetAllMetrics();

}  // namespace isrec::obs

#endif  // ISREC_OBS_METRICS_H_

#ifndef ISREC_OBS_ADMIN_SERVER_H_
#define ISREC_OBS_ADMIN_SERVER_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/rollup.h"

namespace isrec::obs {

/// Live introspection plane (DESIGN.md "Admin server & request
/// tracing"): one HttpServer exposing the process's obs state while it
/// runs. Endpoints:
///
///   /          tiny HTML index of the endpoints below
///   /healthz   "ok\n" + 200 while healthy, 503 while draining/unset
///   /metrics   Prometheus text exposition of the whole registry
///   /varz      JSON: registered sections + full registry snapshot
///   /statusz   human HTML: build info, uptime, rolling 1s/10s/60s
///              rates + windowed percentiles, registered sections
///   /tracez    recent per-request timelines (HTML, ?format=json)
///   /profilez  sampling profiler window: ?seconds=N&format=folded|json
///              (folded = flamegraph.pl-compatible collapsed stacks)
///   /heapz     heap-accounting snapshot (JSON): totals + top sites
///   /admin/loglevel  GET the current log level; PUT/POST a new one
///
/// Subsystems contribute without obs depending on them: they register
/// provider callbacks (AddVarzSection / AddStatuszSection /
/// SetHealthProvider) that the handler invokes per request.
struct AdminServerConfig {
  int port = 0;                      // 0 = ephemeral (see port()).
  std::string bind = "127.0.0.1";    // Loopback only by default.
  double sample_period_s = 1.0;      // Rolling-window sampling cadence.
  /// HTTP worker threads. 1 (the default) keeps the original
  /// one-connection-at-a-time admin behavior; data-plane embedders (a
  /// replica's /recommend, the isrec_router front-end) raise it so slow
  /// requests don't serialize behind each other.
  int num_workers = 1;
};

class AdminServer {
 public:
  /// Returns a JSON value (object/array/number — spliced verbatim).
  using JsonProvider = std::function<std::string()>;
  /// Returns an HTML fragment for one /statusz section.
  using HtmlProvider = std::function<std::string()>;
  /// Returns {healthy, detail line}.
  using HealthProvider = std::function<std::pair<bool, std::string>()>;

  explicit AdminServer(AdminServerConfig config = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds and starts serving + the registry sampler thread. False when
  /// the port can't be bound.
  bool Start();

  /// Stops the sampler and the HTTP server. Idempotent; the destructor
  /// calls it. Callers whose providers capture shorter-lived objects
  /// (an engine, ...) must Stop() before those objects die.
  void Stop();

  /// Bound port (for config.port = 0); 0 before Start.
  int port() const;

  /// Adds "key": <provider()> to the /varz JSON object. `key` must be
  /// unique; providers run on the server thread.
  void AddVarzSection(const std::string& key, JsonProvider provider);

  /// Adds an HTML <section> titled `title` to /statusz.
  void AddStatuszSection(const std::string& title, HtmlProvider provider);

  /// Overrides /healthz (default: healthy, "ok").
  void SetHealthProvider(HealthProvider provider);

  /// Routes `path` (exact match, consulted before the built-in pages)
  /// to `handler` — the extension point for data-plane endpoints that
  /// want to live on the same server as the introspection plane: a
  /// replica's POST /recommend, the router's /admin/drain. A handler on
  /// a built-in path (/tracez, ...) replaces that page — the router
  /// serves its stitched cross-process /tracez this way. Handlers run
  /// on the HTTP worker threads (concurrently when num_workers > 1) and
  /// must be thread-safe. Register before Start().
  void AddHandler(const std::string& path, HttpHandler handler);

  /// One-line build/version string shown on /statusz and /varz.
  void SetBuildInfo(const std::string& info);

 private:
  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleIndex() const;
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;
  HttpResponse HandleVarz() const;
  HttpResponse HandleStatusz() const;
  HttpResponse HandleTracez(const HttpRequest& request) const;
  HttpResponse HandleProfilez(const HttpRequest& request) const;
  HttpResponse HandleHeapz() const;
  HttpResponse HandleLoglevel(const HttpRequest& request) const;
  void SamplerLoop();

  AdminServerConfig config_;
  HttpServer http_;
  RollingAggregator rollup_;

  mutable std::mutex mutex_;  // Guards the provider lists + build info.
  std::vector<std::pair<std::string, JsonProvider>> varz_sections_;
  std::vector<std::pair<std::string, HtmlProvider>> statusz_sections_;
  std::vector<std::pair<std::string, HttpHandler>> handlers_;
  HealthProvider health_;
  std::string build_info_;

  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool stopping_ = false;
  std::thread sampler_;
  int64_t started_ms_ = 0;
  bool started_ = false;
};

/// Renders `snapshot` in the Prometheus text exposition format: metric
/// names sanitized ('.' → '_'), `# TYPE` lines, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string PrometheusText(const MetricsSnapshot& snapshot);

}  // namespace isrec::obs

#endif  // ISREC_OBS_ADMIN_SERVER_H_

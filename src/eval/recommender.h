#ifndef ISREC_EVAL_RECOMMENDER_H_
#define ISREC_EVAL_RECOMMENDER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace isrec::eval {

/// Common interface of all recommendation models (ISRec and every
/// baseline of Table 2).
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Display name as used in the paper's tables (e.g. "SASRec").
  virtual std::string name() const = 0;

  /// Trains on the split's training prefixes.
  virtual void Fit(const data::Dataset& dataset,
                   const data::LeaveOneOutSplit& split) = 0;

  /// Scores `candidates` for a user given their interaction history
  /// (chronological). Higher is better. Must be callable after Fit.
  virtual std::vector<float> Score(Index user,
                                   const std::vector<Index>& history,
                                   const std::vector<Index>& candidates) = 0;

  /// Batched scoring. The default implementation reserves the output and
  /// loops over Score one request at a time — it exists only so trivial
  /// models (PopRec, MF baselines) work out of the box. Neural sequence
  /// models MUST override it to run one batched encoder forward over all
  /// histories (see SequentialModelBase::ScoreBatch); the serving engine
  /// and the evaluator both funnel every request through this entry
  /// point, so a per-request fallback forfeits the entire micro-batching
  /// speedup. Results must equal per-request Score exactly (asserted by
  /// serve_test.ScoreBatchMatchesScore).
  virtual std::vector<std::vector<float>> ScoreBatch(
      const std::vector<Index>& users,
      const std::vector<std::vector<Index>>& histories,
      const std::vector<std::vector<Index>>& candidate_lists);

  /// Non-throwing batched scoring, the entry point the serving engine
  /// uses. The default wraps ScoreBatch and converts any thrown
  /// std::exception into StatusCode::kModelError, so a failing model
  /// surfaces as a typed outcome instead of unwinding through a serving
  /// worker thread. Models that can detect failure more cheaply than via
  /// exceptions may override. Must never throw.
  virtual Outcome<std::vector<std::vector<float>>> TryScoreBatch(
      const std::vector<Index>& users,
      const std::vector<std::vector<Index>>& histories,
      const std::vector<std::vector<Index>>& candidate_lists);
};

}  // namespace isrec::eval

#endif  // ISREC_EVAL_RECOMMENDER_H_

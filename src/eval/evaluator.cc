#include "eval/evaluator.h"

#include <algorithm>

#include "utils/check.h"

namespace isrec::eval {

std::vector<std::vector<float>> Recommender::ScoreBatch(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories,
    const std::vector<std::vector<Index>>& candidate_lists) {
  ISREC_CHECK_EQ(users.size(), histories.size());
  ISREC_CHECK_EQ(users.size(), candidate_lists.size());
  std::vector<std::vector<float>> result;
  result.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    result.push_back(Score(users[i], histories[i], candidate_lists[i]));
  }
  return result;
}

MetricReport EvaluateRanking(Recommender& model, const data::Dataset& dataset,
                             const data::LeaveOneOutSplit& split,
                             const EvalConfig& config) {
  ISREC_CHECK_GT(config.num_negatives, 0);
  data::NegativeSampler sampler(dataset);
  Rng rng(config.seed);
  MetricAccumulator accumulator;

  const auto& users = split.evaluable_users();
  ISREC_CHECK_MSG(!users.empty(), "no evaluable users");

  for (size_t start = 0; start < users.size();
       start += static_cast<size_t>(config.batch_size)) {
    const size_t end = std::min(users.size(),
                                start + static_cast<size_t>(config.batch_size));
    std::vector<Index> batch_users;
    std::vector<std::vector<Index>> histories;
    std::vector<std::vector<Index>> candidate_lists;
    for (size_t i = start; i < end; ++i) {
      const Index u = users[i];
      batch_users.push_back(u);
      histories.push_back(config.use_validation ? split.ValidHistory(u)
                                                : split.TestHistory(u));
      const Index positive = config.use_validation ? split.ValidTarget(u)
                                                   : split.TestTarget(u);
      // Candidate 0 is always the positive; the rest are negatives.
      std::vector<Index> candidates = {positive};
      const std::vector<Index> negatives =
          sampler.Sample(u, config.num_negatives, rng);
      candidates.insert(candidates.end(), negatives.begin(), negatives.end());
      candidate_lists.push_back(std::move(candidates));
    }

    const auto scores =
        model.ScoreBatch(batch_users, histories, candidate_lists);
    ISREC_CHECK_EQ(scores.size(), batch_users.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      ISREC_CHECK_EQ(scores[i].size(), candidate_lists[i].size());
      const float positive_score = scores[i][0];
      std::vector<float> negative_scores(scores[i].begin() + 1,
                                         scores[i].end());
      accumulator.AddRank(RankOfPositive(positive_score, negative_scores));
    }
  }
  return accumulator.Report();
}

}  // namespace isrec::eval

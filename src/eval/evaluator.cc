#include "eval/evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/parallel.h"
#include "utils/stopwatch.h"

namespace isrec::eval {

std::vector<std::vector<float>> Recommender::ScoreBatch(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories,
    const std::vector<std::vector<Index>>& candidate_lists) {
  ISREC_CHECK_EQ(users.size(), histories.size());
  ISREC_CHECK_EQ(users.size(), candidate_lists.size());
  std::vector<std::vector<float>> result;
  result.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    result.push_back(Score(users[i], histories[i], candidate_lists[i]));
  }
  return result;
}

Outcome<std::vector<std::vector<float>>> Recommender::TryScoreBatch(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories,
    const std::vector<std::vector<Index>>& candidate_lists) {
  try {
    return ScoreBatch(users, histories, candidate_lists);
  } catch (const std::exception& e) {
    return Status::ModelError(name() + ": " + e.what());
  } catch (...) {
    return Status::ModelError(name() + ": non-standard exception");
  }
}

MetricReport EvaluateRanking(Recommender& model, const data::Dataset& dataset,
                             const data::LeaveOneOutSplit& split,
                             const EvalConfig& config) {
  ISREC_CHECK_GT(config.num_negatives, 0);
  data::NegativeSampler sampler(dataset);
  Rng rng(config.seed);
  MetricAccumulator accumulator;

  const auto& users = split.evaluable_users();
  ISREC_CHECK_MSG(!users.empty(), "no evaluable users");

  // Batches are materialized, scored, and accumulated in bounded windows
  // so peak memory stays O(window) instead of O(split). Each window runs
  // three phases:
  //   1 (serial): materialize its batches. Windows are built in user
  //     order and the window size is a multiple of batch_size, so batch
  //     composition and the shared rng's negative-sampling draws are
  //     identical to the fully serial loop.
  //   2 (parallel): batches are independent ScoreBatch calls, so they
  //     shard across the intra-op pool (inside a shard, each call's own
  //     kernels then run serially — nested ParallelFor is inline).
  //   3 (serial): accumulate in batch order, keeping the metric
  //     reduction order identical to the serial implementation.
  struct Batch {
    std::vector<Index> users;
    std::vector<std::vector<Index>> histories;
    std::vector<std::vector<Index>> candidate_lists;
  };
  const size_t batch_size = static_cast<size_t>(config.batch_size);
  const size_t window_users =
      batch_size * 4 * static_cast<size_t>(std::max<Index>(
                           Index{1}, utils::GetNumThreads()));
  // Phase telemetry: per-window sampling/scoring/accumulation wall time
  // plus a scored-user counter. Clock reads only — the evaluation
  // protocol (rng draw order, batch composition, reduction order) is
  // unchanged, so metrics are bitwise identical with obs on or off.
  ISREC_TRACE_SPAN("eval.ranking");
  const bool metrics = obs::MetricsEnabled();
  Stopwatch phase_sw;
  for (size_t window = 0; window < users.size(); window += window_users) {
    const size_t window_end = std::min(users.size(), window + window_users);
    if (metrics) phase_sw.Restart();
    ISREC_TRACE_SPAN("eval.window");
    std::vector<Batch> batches;
    {
      ISREC_TRACE_SPAN("eval.sample");
      for (size_t start = window; start < window_end; start += batch_size) {
        const size_t end = std::min(window_end, start + batch_size);
        Batch batch;
        for (size_t i = start; i < end; ++i) {
          const Index u = users[i];
          batch.users.push_back(u);
          batch.histories.push_back(config.use_validation
                                        ? split.ValidHistory(u)
                                        : split.TestHistory(u));
          const Index positive = config.use_validation ? split.ValidTarget(u)
                                                       : split.TestTarget(u);
          // Candidate 0 is always the positive; the rest are negatives.
          std::vector<Index> candidates = {positive};
          const std::vector<Index> negatives =
              sampler.Sample(u, config.num_negatives, rng);
          candidates.insert(candidates.end(), negatives.begin(),
                            negatives.end());
          batch.candidate_lists.push_back(std::move(candidates));
        }
        batches.push_back(std::move(batch));
      }
    }
    double sample_ms = 0.0;
    if (metrics) {
      sample_ms = phase_sw.ElapsedMillis();
      phase_sw.Restart();
    }

    std::vector<std::vector<std::vector<float>>> all_scores(batches.size());
    {
      ISREC_TRACE_SPAN("eval.score");
      utils::ParallelFor(
          0, static_cast<Index>(batches.size()), 1, [&](Index b0, Index b1) {
            for (Index b = b0; b < b1; ++b) {
              all_scores[b] = model.ScoreBatch(batches[b].users,
                                               batches[b].histories,
                                               batches[b].candidate_lists);
            }
          });
    }
    double score_ms = 0.0;
    if (metrics) {
      score_ms = phase_sw.ElapsedMillis();
      phase_sw.Restart();
    }

    ISREC_TRACE_SPAN("eval.accumulate");
    for (size_t b = 0; b < batches.size(); ++b) {
      const auto& scores = all_scores[b];
      ISREC_CHECK_EQ(scores.size(), batches[b].users.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        ISREC_CHECK_EQ(scores[i].size(), batches[b].candidate_lists[i].size());
        const float positive_score = scores[i][0];
        std::vector<float> negative_scores(scores[i].begin() + 1,
                                           scores[i].end());
        accumulator.AddRank(RankOfPositive(positive_score, negative_scores));
      }
    }
    if (metrics) {
      static obs::Histogram& sample_hist = obs::GetHistogram(
          "eval.sample_ms", obs::LatencyBucketsMs());
      static obs::Histogram& score_hist = obs::GetHistogram(
          "eval.score_ms", obs::LatencyBucketsMs());
      static obs::Histogram& accumulate_hist = obs::GetHistogram(
          "eval.accumulate_ms", obs::LatencyBucketsMs());
      static obs::Counter& scored_users = obs::GetCounter("eval.users");
      sample_hist.Observe(sample_ms);
      score_hist.Observe(score_ms);
      accumulate_hist.Observe(phase_sw.ElapsedMillis());
      scored_users.Add(window_end - window);
    }
  }
  return accumulator.Report();
}

}  // namespace isrec::eval

#ifndef ISREC_EVAL_EVALUATOR_H_
#define ISREC_EVAL_EVALUATOR_H_

#include "data/dataset.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "eval/recommender.h"

namespace isrec::eval {

/// Sampled-ranking evaluation protocol (Section 4.2.1): for every
/// evaluable user, rank the held-out positive against `num_negatives`
/// uniformly sampled unseen items.
struct EvalConfig {
  Index num_negatives = 100;
  uint64_t seed = 777;
  /// If true, rank the validation target given the train prefix;
  /// otherwise the test target given train + validation.
  bool use_validation = false;
  /// Users scored per ScoreBatch call.
  Index batch_size = 64;
};

/// Runs the protocol and aggregates HR/NDCG/MRR over all evaluable
/// users. Negative samples are drawn deterministically from
/// `config.seed`, so runs are comparable across models.
MetricReport EvaluateRanking(Recommender& model, const data::Dataset& dataset,
                             const data::LeaveOneOutSplit& split,
                             const EvalConfig& config = {});

}  // namespace isrec::eval

#endif  // ISREC_EVAL_EVALUATOR_H_

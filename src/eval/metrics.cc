#include "eval/metrics.h"

#include <cmath>
#include <sstream>

#include "utils/check.h"
#include "utils/table.h"

namespace isrec::eval {

double HitRate(Index rank, Index k) {
  ISREC_CHECK_GE(rank, 1);
  return rank <= k ? 1.0 : 0.0;
}

double Ndcg(Index rank, Index k) {
  ISREC_CHECK_GE(rank, 1);
  if (rank > k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 1.0);
}

double ReciprocalRank(Index rank) {
  ISREC_CHECK_GE(rank, 1);
  return 1.0 / static_cast<double>(rank);
}

Index RankOfPositive(float positive_score,
                     const std::vector<float>& negative_scores) {
  Index rank = 1;
  for (float s : negative_scores) {
    if (s >= positive_score) ++rank;
  }
  return rank;
}

void MetricAccumulator::AddRank(Index rank) {
  hr1_ += HitRate(rank, 1);
  hr5_ += HitRate(rank, 5);
  hr10_ += HitRate(rank, 10);
  ndcg5_ += Ndcg(rank, 5);
  ndcg10_ += Ndcg(rank, 10);
  mrr_ += ReciprocalRank(rank);
  ++count_;
}

MetricReport MetricAccumulator::Report() const {
  ISREC_CHECK_GT(count_, 0);
  const double n = static_cast<double>(count_);
  MetricReport report;
  report.hr1 = hr1_ / n;
  report.hr5 = hr5_ / n;
  report.hr10 = hr10_ / n;
  report.ndcg5 = ndcg5_ / n;
  report.ndcg10 = ndcg10_ / n;
  report.mrr = mrr_ / n;
  report.num_users = count_;
  return report;
}

std::string MetricReport::ToString() const {
  std::ostringstream out;
  out << "HR@1=" << FormatFloat(hr1) << " HR@5=" << FormatFloat(hr5)
      << " HR@10=" << FormatFloat(hr10) << " NDCG@5=" << FormatFloat(ndcg5)
      << " NDCG@10=" << FormatFloat(ndcg10) << " MRR=" << FormatFloat(mrr)
      << " (n=" << num_users << ")";
  return out.str();
}

}  // namespace isrec::eval

#ifndef ISREC_EVAL_METRICS_H_
#define ISREC_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace isrec::eval {

/// Single-ground-truth ranking metrics (Eqs. 15-17 of the paper).
/// `rank` is 1-based: 1 means the positive item scored highest.

/// HR@k: 1 if the positive lands in the top-k, else 0.
double HitRate(Index rank, Index k);

/// NDCG@k: 1 / log2(rank + 1) if rank <= k, else 0. With one relevant
/// item the ideal DCG is 1, so no further normalization is needed.
double Ndcg(Index rank, Index k);

/// MRR contribution: 1 / rank.
double ReciprocalRank(Index rank);

/// Computes the 1-based rank of `positive_score` within the candidate
/// scores (positive + negatives). Ties are counted above the positive
/// (pessimistic), matching common implementations.
Index RankOfPositive(float positive_score,
                     const std::vector<float>& negative_scores);

/// Aggregated report over many users — the columns of Table 2.
struct MetricReport {
  double hr1 = 0.0;
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
  double mrr = 0.0;
  Index num_users = 0;

  std::string ToString() const;
};

/// Streaming accumulator for MetricReport.
class MetricAccumulator {
 public:
  /// Adds one user's outcome given the positive's 1-based rank.
  void AddRank(Index rank);

  MetricReport Report() const;

 private:
  double hr1_ = 0.0, hr5_ = 0.0, hr10_ = 0.0;
  double ndcg5_ = 0.0, ndcg10_ = 0.0, mrr_ = 0.0;
  Index count_ = 0;
};

}  // namespace isrec::eval

#endif  // ISREC_EVAL_METRICS_H_

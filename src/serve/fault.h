#ifndef ISREC_SERVE_FAULT_H_
#define ISREC_SERVE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace isrec::serve {

/// Deterministic fault injection for the serving engine (DESIGN.md §10).
/// Lets tests and benches prove every outcome path — slow models, model
/// exceptions — without depending on real hardware misbehavior.
struct FaultConfig {
  /// Probability in [0, 1] that a ScoreBatch call throws
  /// std::runtime_error("injected score fault"). Drawn from a
  /// deterministic splitmix64 stream seeded by `seed`, so a given
  /// (seed, call-sequence) always faults the same calls.
  double score_throw = 0.0;
  /// Fixed sleep before every ScoreBatch call, simulating a slow model.
  double score_delay_ms = 0.0;
  /// Seed of the throw-decision stream.
  uint64_t seed = 0x9e3779b97f4a7c15ull;

  bool enabled() const { return score_throw > 0.0 || score_delay_ms > 0.0; }
};

/// Parses the ISREC_FAULT grammar: comma-separated key:value pairs over
/// the keys {score_throw, score_delay_ms, seed}, e.g.
/// "score_throw:0.01,score_delay_ms:50". Whitespace is not allowed.
/// Returns false (leaving *config untouched) on an unknown key, a
/// malformed number, or an out-of-range probability.
bool ParseFaultSpec(const std::string& spec, FaultConfig* config);

/// FaultConfig from the ISREC_FAULT environment variable; default
/// (no faults) when unset or empty. A malformed spec is reported on
/// stderr and ignored — a typo must not change serving behavior
/// silently, and must not take the server down either.
FaultConfig FaultConfigFromEnv();

/// The engine-side injection point. Thread-safe: OnScore may be called
/// concurrently from every serving worker.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& config);

  /// Programmatic seam for tests: invoked at the top of every OnScore
  /// call, before the configured delay and throw decision. A blocking
  /// hook holds the calling worker mid-"score", which is how tests pin
  /// queue buildup deterministically. Set before traffic flows.
  void set_before_score(std::function<void()> hook);

  /// Called by the engine immediately before each model scoring call:
  /// runs the hook, sleeps score_delay_ms, then throws std::runtime_error
  /// with probability score_throw. Increments score_calls() first, so
  /// "this request was never scored" is observable even across faults.
  void OnScore();

  /// Number of OnScore calls so far (i.e. scoring attempts, including
  /// ones that then threw).
  uint64_t score_calls() const {
    return score_calls_.load(std::memory_order_relaxed);
  }

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::function<void()> before_score_;
  std::atomic<uint64_t> score_calls_{0};
  std::mutex rng_mutex_;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_FAULT_H_

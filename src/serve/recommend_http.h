#ifndef ISREC_SERVE_RECOMMEND_HTTP_H_
#define ISREC_SERVE_RECOMMEND_HTTP_H_

// The JSON-over-HTTP recommend protocol (DESIGN.md §11 "Sharded serving
// tier"): one codec shared by the replica's POST /recommend endpoint
// and the isrec_router forwarder, so the two sides cannot drift.
//
// Request body (all fields except "user" optional):
//   {"user": 7, "history": [1,2,3], "k": 10, "candidates": [],
//    "deadline_ms": 50.0, "priority": 1, "allow_degraded": false,
//    "id": 12345}
//
// Response body:
//   {"status": "OK", "message": "", "items": [9,4,1],
//    "scores": [3.5,2.0,1.0], "from_cache": false, "model_version": 1}
//
// "model_version" is the engine's live model generation that produced
// the ranking (0 = degraded config-level fallback) — with hot model
// swaps in play (POST /admin/reload, online learning) it tells clients
// and the router exactly which generation answered.
//
// "status" is the StatusCodeName of the outcome; items/scores are
// present exactly when the outcome carries a value (kOk or kDegraded).
// The HTTP status mirrors it (200 OK/DEGRADED, 400 INVALID_ARGUMENT,
// 500 MODEL_ERROR, 503 OVERLOADED, 504 DEADLINE_EXCEEDED) so plain
// curl and load balancers see sensible codes, but the JSON "status"
// field is authoritative for protocol peers.
//
// Distributed tracing (DESIGN.md "Distributed tracing & fleet
// metrics"): a peer that sends X-Isrec-Trace (+ X-Isrec-Trace-Echo: 1)
// on the POST gets an extra "trace" object in the response —
//   "trace": {"clock_ns": 812345678, "spans":
//     [{"name": "serve.req.enqueue", "start_ns": ..., "dur_ns": ...,
//       "tid": 3}, ...]}
// — the replica's span timeline for that request on the replica's own
// trace clock, which the router translates via its per-replica clock
// offset and stitches into one cross-process timeline. Requests without
// the header take a byte-identical path to the pre-tracing protocol: no
// extra work, no "trace" key.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "utils/status.h"

namespace isrec::obs {
class AdminServer;
}  // namespace isrec::obs

namespace isrec::serve {

/// One span echoed across the wire. Unlike obs::RequestSpan the name is
/// an owned string: it crosses a process boundary as JSON, so there is
/// no static literal to point at on the receiving side.
struct TraceEchoSpan {
  std::string name;
  uint64_t start_ns = 0;  // On the RECORDING process's trace clock.
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

/// The replica's span timeline for one traced request, echoed in the
/// response when the peer asked for it (X-Isrec-Trace-Echo).
struct TraceEcho {
  bool present = false;   // True iff the response carried a "trace" key.
  uint64_t clock_ns = 0;  // Replica trace clock read at respond time.
  std::vector<TraceEchoSpan> spans;
};

/// Wire form of one recommend answer: the outcome's code + message and,
/// when it carries a value, the ranking.
struct RecommendResponse {
  Status status;
  Recommendation recommendation;  // Meaningful iff has_value.
  bool has_value = false;
  TraceEcho trace;  // Serialized only when trace.present.

  /// Builds the wire response from an engine outcome.
  static RecommendResponse FromOutcome(const Outcome<Recommendation>& outcome);
};

/// Serializes `request` as the protocol's JSON request body.
std::string RecommendRequestToJson(const Request& request);

/// Parses a JSON request body. False (with `error` filled) on malformed
/// JSON or wrong field types; absent optional fields keep the Request
/// defaults.
bool RecommendRequestFromJson(const std::string& body, Request* request,
                              std::string* error);

/// Serializes `response` as the protocol's JSON response body.
std::string RecommendResponseToJson(const RecommendResponse& response);

/// Parses a JSON response body. False (with `error` filled) on
/// malformed JSON or an unknown "status" name.
bool RecommendResponseFromJson(const std::string& body,
                               RecommendResponse* response,
                               std::string* error);

/// HTTP status code mirroring a protocol outcome code.
int HttpStatusForCode(StatusCode code);

/// Inverse of StatusCodeName; false on an unknown name.
bool StatusCodeFromName(const std::string& name, StatusCode* code);

/// Installs the POST /recommend endpoint on `admin`, answering with
/// engine.Recommend. Blocking: the handler occupies one HTTP worker for
/// the request's queue+score time, so replicas should run the admin
/// server with several workers (AdminServerConfig::num_workers). The
/// engine must outlive the admin server — or the server must be
/// Stop()ped first (same contract as RegisterAdminSections).
///
/// Trace propagation: when the request carries X-Isrec-Trace (and
/// tracing is enabled in this process), the header's trace id becomes
/// the engine Request id — so the replica's serve.req.* spans index
/// under the cross-process id — and an X-Isrec-Trace-Echo peer gets the
/// request's span timeline back in the response "trace" object.
void RegisterRecommendEndpoint(obs::AdminServer& admin, ServingEngine& engine);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_RECOMMEND_HTTP_H_

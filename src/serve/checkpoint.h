#ifndef ISREC_SERVE_CHECKPOINT_H_
#define ISREC_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/isrec.h"
#include "data/dataset.h"

namespace isrec::serve {

/// Version of the checkpoint container format. Bump whenever the layout
/// below changes; LoadCheckpoint rejects files with a different version
/// (forward/backward migration is out of scope — retrain or re-save).
///
/// Layout (all integers little-endian, strings length-prefixed u64):
///   u32 magic "ISCK"
///   u32 version
///   config section : every IsrecConfig/SeqModelConfig field, fixed order
///   vocab section  : dataset name, num_users, num_items,
///                    item->concept lists (matrix E),
///                    concept graph (count, names, edge list)
///   param section  : nn::SaveParameters blob (own magic + name/shape
///                    per tensor)
/// User sequences are deliberately NOT stored: serving requests carry
/// their own histories, and at production scale the interaction log does
/// not belong in a model artifact.
inline constexpr uint32_t kCheckpointVersion = 1;

/// A model restored from a checkpoint, ready to Score. The dataset owns
/// the vocabulary (item-concept matrix + intention graph) the model was
/// built against and must stay alive as long as the model (the model
/// keeps a pointer), hence the bundle.
struct ServableModel {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::IsrecModel> model;
};

/// Serializes a trained IsrecModel — config, vocabulary, and all
/// parameters — into one versioned binary file at `path`. The model must
/// have been Fit (or Build+LoadParameters) so it is bound to a dataset.
void SaveCheckpoint(const core::IsrecModel& model, const std::string& path);

/// Restores a checkpoint written by SaveCheckpoint: rebuilds the model
/// from the stored config and vocabulary, then restores the parameters.
/// Scores from the result are bitwise-identical to the saved model's.
/// Returns {nullptr, nullptr} (with a logged warning) if the file cannot
/// be opened, is not a checkpoint, has a different version, or is
/// truncated/corrupt in any section.
ServableModel LoadCheckpoint(const std::string& path);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_CHECKPOINT_H_

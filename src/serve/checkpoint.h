#ifndef ISREC_SERVE_CHECKPOINT_H_
#define ISREC_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/isrec.h"
#include "data/dataset.h"
#include "eval/recommender.h"
#include "serve/quantized.h"

namespace isrec::serve {

/// Version of the checkpoint container format. Bump whenever the layout
/// below changes; LoadCheckpoint rejects files with a different version
/// (forward/backward migration is out of scope — retrain or re-save).
///
/// Layout (all integers little-endian, strings length-prefixed u64):
///   u32 magic "ISCK"
///   u32 version
///   config section : every IsrecConfig/SeqModelConfig field, fixed order
///   vocab section  : dataset name, num_users, num_items,
///                    item->concept lists (matrix E),
///                    concept graph (count, names, edge list)
///   param section  : nn::SaveParameters blob (own magic + name/shape
///                    per tensor)
/// User sequences are deliberately NOT stored: serving requests carry
/// their own histories, and at production scale the interaction log does
/// not belong in a model artifact.
inline constexpr uint32_t kCheckpointVersion = 1;

/// Post-load weight transform applied to the restored model's serving
/// path. The checkpoint file itself always stores fp32 parameters;
/// quantization is a load-time decision, so one artifact serves both
/// exact and quantized replicas.
enum class Quantization {
  kNone,  // fp32 scoring, bitwise-identical to the saved model.
  kInt8,  // int8 catalog scoring (QuantizedScorer); ranking-level
          // agreement only, see quantized.h for the tolerance contract.
};

struct LoadOptions {
  Quantization quantization = Quantization::kNone;
};

/// A model restored from a checkpoint, ready to Score. The dataset owns
/// the vocabulary (item-concept matrix + intention graph) the model was
/// built against and must stay alive as long as the model (the model
/// keeps a pointer), hence the bundle.
struct ServableModel {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::IsrecModel> model;
  /// Set iff loaded with Quantization::kInt8 (wraps *model).
  std::unique_ptr<QuantizedScorer> quantized;

  /// The recommender serving traffic should score through: the int8
  /// wrapper when quantization was requested, else the fp32 model.
  /// nullptr iff the load failed.
  eval::Recommender* scorer() {
    if (quantized != nullptr) return quantized.get();
    return model.get();
  }
};

/// Serializes a trained IsrecModel — config, vocabulary, and all
/// parameters — into one versioned binary file at `path`. The model must
/// have been Fit (or Build+LoadParameters) so it is bound to a dataset.
void SaveCheckpoint(const core::IsrecModel& model, const std::string& path);

/// Restores a checkpoint written by SaveCheckpoint: rebuilds the model
/// from the stored config and vocabulary, then restores the parameters.
/// Scores from the result are bitwise-identical to the saved model's.
/// Returns {nullptr, nullptr} (with a logged warning) if the file cannot
/// be opened, is not a checkpoint, has a different version, or is
/// truncated/corrupt in any section.
ServableModel LoadCheckpoint(const std::string& path);

/// As above, optionally quantizing the restored item table for serving
/// (options.quantization == kInt8 builds ServableModel::quantized).
/// Quantization happens after the fp32 parameters are restored; a failed
/// load never reaches it.
ServableModel LoadCheckpoint(const std::string& path,
                             const LoadOptions& options);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_CHECKPOINT_H_

#ifndef ISREC_SERVE_CHECKPOINT_H_
#define ISREC_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/isrec.h"
#include "data/dataset.h"
#include "eval/recommender.h"
#include "serve/quantized.h"
#include "utils/status.h"

namespace isrec::serve {

/// Version of the checkpoint container format. Bump whenever the layout
/// below changes; ServableModel::Load rejects files with a different
/// version (forward/backward migration is out of scope — retrain or
/// re-save).
///
/// Layout (all integers little-endian, strings length-prefixed u64):
///   u32 magic "ISCK"
///   u32 version
///   u64 epoch      : cumulative training epochs behind this artifact
///   config section : every IsrecConfig/SeqModelConfig field, fixed order
///   vocab section  : dataset name, num_users, num_items,
///                    item->concept lists (matrix E),
///                    concept graph (count, names, edge list)
///   prior section  : per-item training interaction counts (f32 x
///                    num_items) — the popularity prior degraded serving
///                    falls back to
///   param section  : nn::SaveParameters blob (own magic + name/shape
///                    per tensor)
/// User sequences are deliberately NOT stored: serving requests carry
/// their own histories, and at production scale the interaction log does
/// not belong in a model artifact.
inline constexpr uint32_t kCheckpointVersion = 2;

/// Post-load weight transform applied to the restored model's serving
/// path. The checkpoint file itself always stores fp32 parameters;
/// quantization is a load-time decision, so one artifact serves both
/// exact and quantized replicas.
enum class Quantization {
  kNone,  // fp32 scoring, bitwise-identical to the saved model.
  kInt8,  // int8 catalog scoring (QuantizedScorer); ranking-level
          // agreement only, see quantized.h for the tolerance contract.
};

struct LoadOptions {
  Quantization quantization = Quantization::kNone;
};

/// One immutable, refcounted serving artifact: a restored model plus
/// everything the engine needs to score with it (vocabulary-owning
/// dataset, optional int8 wrapper, popularity prior, training epoch).
/// `ServingEngine` publishes these atomically via shared_ptr, so a
/// ServableModel must never be mutated after Load/Wrap — a fresher model
/// is a new ServableModel, never an edit to a live one.
struct ServableModel {
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<core::IsrecModel> model;
  /// Set iff loaded with Quantization::kInt8 (wraps *model).
  std::unique_ptr<QuantizedScorer> quantized;
  /// Cumulative training epochs behind this artifact (checkpoint header).
  uint64_t epoch = 0;
  /// Per-item training interaction counts; the degraded-serving fallback
  /// prior. Empty when the artifact predates the prior (Wrap without one).
  std::vector<float> popularity;

  /// The one canonical loading entry point: restores a checkpoint
  /// written by SaveCheckpoint — rebuilds the model from the stored
  /// config and vocabulary, restores the parameters (scores are
  /// bitwise-identical to the saved model's), and applies
  /// options.quantization to the serving path. Every failure mode —
  /// unopenable file, magic mismatch, version mismatch, corrupt
  /// config/vocab/prior section, truncated or mismatched parameter blob —
  /// returns a typed kModelError status instead of a handle.
  static Outcome<std::shared_ptr<ServableModel>> Load(
      const std::string& path, const LoadOptions& options = {});

  /// Wraps an external recommender so tests and benches can drive a
  /// ServingEngine without a checkpoint on disk. The recommender is NOT
  /// owned and must outlive the returned handle (and every engine it is
  /// published to). `popularity`, when given, sizes num_items items.
  static std::shared_ptr<ServableModel> Wrap(
      eval::Recommender& scorer, Index num_items,
      std::vector<float> popularity = {});

  /// The recommender serving traffic should score through: the external
  /// scorer for Wrap handles, else the int8 wrapper when quantization
  /// was requested, else the fp32 model. Never nullptr on a handle
  /// obtained from Load or Wrap.
  eval::Recommender* scorer() const {
    if (external_scorer != nullptr) return external_scorer;
    if (quantized != nullptr) return quantized.get();
    return model.get();
  }

  /// Catalog size requests are validated against.
  Index num_items() const {
    if (dataset != nullptr) return dataset->num_items;
    return external_num_items;
  }

  // Wrap() internals (public so aggregate init stays trivial; use Wrap).
  eval::Recommender* external_scorer = nullptr;
  Index external_num_items = 0;
};

/// Serializes a trained IsrecModel — config, vocabulary, popularity
/// prior, and all parameters — into one versioned binary file at `path`.
/// The model must have been Fit (or Build+LoadParameters) so it is bound
/// to a dataset. `epoch` records the cumulative training epochs behind
/// the artifact and round-trips through ServableModel::epoch.
void SaveCheckpoint(const core::IsrecModel& model, const std::string& path,
                    uint64_t epoch = 0);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_CHECKPOINT_H_

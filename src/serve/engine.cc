#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>

#include "obs/admin_server.h"
#include "obs/heap_profiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/kernels/registry.h"
#include "utils/check.h"

namespace isrec::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Queue-depth gauge, written inside the queue lock on every transition
// so the snapshot is an exact instantaneous depth.
void SetQueueDepth(size_t depth) {
  if (!obs::MetricsEnabled()) return;
  static obs::Gauge& gauge = obs::GetGauge("serve.queue_depth");
  gauge.Set(static_cast<double>(depth));
}

void SetModelVersionGauge(uint64_t version) {
  if (!obs::MetricsEnabled()) return;
  static obs::Gauge& gauge = obs::GetGauge("serve.model_version");
  gauge.Set(static_cast<double>(version));
}

// FNV-1a, mixing every field that determines the response.
uint64_t HashCombine(uint64_t hash, uint64_t value) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int shift = 0; shift < 64; shift += 8) {
    hash = (hash ^ ((value >> shift) & 0xff)) * kPrime;
  }
  return hash;
}

double MsSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Builds the next ModelHandle generation around a validated servable.
std::shared_ptr<const ModelHandle> MakeHandle(
    std::shared_ptr<ServableModel> servable, uint64_t version) {
  auto handle = std::make_shared<ModelHandle>();
  handle->version = version;
  handle->catalog.resize(servable->num_items());
  std::iota(handle->catalog.begin(), handle->catalog.end(), 0);
  handle->servable = std::move(servable);
  return handle;
}

/// Shared by the constructor and Publish: everything that disqualifies a
/// ServableModel from going live, checked WITHOUT touching engine state.
/// The probe smoke-score proves the scorer can actually answer a request
/// shaped like production traffic before any real request reaches it.
Status ValidateServable(const std::shared_ptr<ServableModel>& model) {
  if (model == nullptr) {
    return Status::ModelError("publish rejected: null ServableModel");
  }
  if (model->scorer() == nullptr) {
    return Status::ModelError("publish rejected: ServableModel has no scorer");
  }
  const Index num_items = model->num_items();
  if (num_items <= 0) {
    return Status::ModelError("publish rejected: empty catalog (num_items=" +
                              std::to_string(num_items) + ")");
  }
  std::vector<Index> probe_candidates(
      static_cast<size_t>(std::min<Index>(num_items, 8)));
  std::iota(probe_candidates.begin(), probe_candidates.end(), 0);
  const Outcome<std::vector<std::vector<float>>> probe =
      model->scorer()->TryScoreBatch({0}, {{0}}, {probe_candidates});
  if (!probe.has_value()) {
    return Status::ModelError(
        "publish rejected: probe batch failed to score (" +
        probe.status().ToString() + ")");
  }
  if (probe.value().size() != 1 ||
      probe.value()[0].size() != probe_candidates.size()) {
    return Status::ModelError(
        "publish rejected: probe batch returned malformed scores");
  }
  return Status::Ok();
}

// Request phases the engine attributes allocations to (heap profiling
// on): the indices of kAllocPhaseNames and the serve.alloc.* counters.
enum AllocPhase {
  kAllocEnqueue = 0,
  kAllocBatch,
  kAllocScore,
  kAllocRespond,
  kNumAllocPhases,
};

const char* const kAllocPhaseNames[kNumAllocPhases] = {"enqueue", "batch",
                                                       "score", "respond"};

}  // namespace

/// RAII per-phase allocation accounting: an AllocationCounter scope
/// whose totals flush into the owning engine when the phase ends.
/// Inactive (heap profiling off), construction and destruction are one
/// relaxed load + branch each — the pipeline's off-path contract.
struct PhaseAllocScope {
  PhaseAllocScope(ServingEngine* engine, int phase)
      : engine(engine), phase(phase) {}
  ~PhaseAllocScope() {
    if (counter.active()) {
      engine->RecordPhaseAllocations(phase, counter.count(), counter.bytes());
    }
  }

  PhaseAllocScope(const PhaseAllocScope&) = delete;
  PhaseAllocScope& operator=(const PhaseAllocScope&) = delete;

  ServingEngine* engine;
  int phase;
  obs::heap::AllocationCounter counter;
};

void ServingEngine::RecordPhaseAllocations(int phase, uint64_t count,
                                           uint64_t bytes) {
  if (count == 0 && bytes == 0) return;
  alloc_count_.fetch_add(count, std::memory_order_relaxed);
  alloc_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (!obs::MetricsEnabled()) return;
  ISREC_CHECK(phase >= 0 && phase < kNumAllocPhases);
  // One counter pair per phase, resolved once (function-local statics).
  static obs::Counter* const counts[kNumAllocPhases] = {
      &obs::GetCounter("serve.alloc.enqueue.count"),
      &obs::GetCounter("serve.alloc.batch.count"),
      &obs::GetCounter("serve.alloc.score.count"),
      &obs::GetCounter("serve.alloc.respond.count"),
  };
  static obs::Counter* const byte_counts[kNumAllocPhases] = {
      &obs::GetCounter("serve.alloc.enqueue.bytes"),
      &obs::GetCounter("serve.alloc.batch.bytes"),
      &obs::GetCounter("serve.alloc.score.bytes"),
      &obs::GetCounter("serve.alloc.respond.bytes"),
  };
  counts[phase]->Add(count);
  byte_counts[phase]->Add(bytes);
}

size_t RequestKeyHash::operator()(const RequestKey& key) const {
  uint64_t hash = 14695981039346656037ull;
  hash = HashCombine(hash, static_cast<uint64_t>(key.user));
  hash = HashCombine(hash, static_cast<uint64_t>(key.k));
  hash = HashCombine(hash, key.model_version);
  hash = HashCombine(hash, key.history.size());
  for (Index item : key.history) {
    hash = HashCombine(hash, static_cast<uint64_t>(item));
  }
  hash = HashCombine(hash, key.candidates.size());
  for (Index item : key.candidates) {
    hash = HashCombine(hash, static_cast<uint64_t>(item));
  }
  return static_cast<size_t>(hash);
}

Recommendation TopK(const std::vector<float>& scores,
                    const std::vector<Index>& candidates, Index k) {
  ISREC_CHECK_EQ(scores.size(), candidates.size());
  const Index n = static_cast<Index>(candidates.size());
  const Index kk = std::min(k, n);
  // Scratch reused across calls; workers call this once per request.
  thread_local std::vector<Index> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  const auto better = [&](Index a, Index b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return candidates[a] < candidates[b];
  };
  std::partial_sort(order.begin(), order.begin() + kk, order.end(), better);
  Recommendation result;
  result.items.reserve(kk);
  result.scores.reserve(kk);
  for (Index i = 0; i < kk; ++i) {
    result.items.push_back(candidates[order[i]]);
    result.scores.push_back(scores[order[i]]);
  }
  return result;
}

ServingEngine::ServingEngine(std::shared_ptr<ServableModel> model,
                             EngineConfig config)
    : config_(config),
      fault_(config.fault.enabled() ? config.fault : FaultConfigFromEnv()) {
  ISREC_CHECK_GT(config.num_threads, 0);
  ISREC_CHECK_GT(config.max_batch_size, 0);
  ISREC_CHECK_GT(config.queue_capacity, 0);
  ISREC_CHECK_GE(config.batch_window_us, 0);
  const Status valid = ValidateServable(model);
  ISREC_CHECK_MSG(valid.ok(),
                  "ServingEngine needs a servable model: " << valid.message());
  live_ = MakeHandle(std::move(model), /*version=*/1);
  live_version_.store(1, std::memory_order_release);
  live_num_items_.store(live_->num_items(), std::memory_order_release);
  SetModelVersionGauge(1);
  if (config.shed_high_watermark > 0) {
    ISREC_CHECK_GE(config.shed_low_watermark, 0);
    ISREC_CHECK_LE(config.shed_low_watermark, config.shed_high_watermark);
    ISREC_CHECK_LE(config.shed_high_watermark, config.queue_capacity);
  }
  if (config.cache_capacity > 0) {
    cache_ =
        std::make_unique<LruCache<RequestKey, Recommendation, RequestKeyHash>>(
            config.cache_capacity);
  }
  pool_ = std::make_unique<utils::ThreadPool>(config.num_threads);
  for (Index i = 0; i < config.num_threads; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    closed_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  pool_.reset();  // Workers answer everything still queued, then exit.
  // Belt and braces: workers drain the queue before exiting, so this is
  // normally empty — but a promise must never break, even if a worker
  // died abnormally.
  std::deque<Pending> leftovers;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    leftovers.swap(queue_);
  }
  // Release the engine's model reference BEFORE resolving leftover
  // promises: with the workers joined, this drops the last engine-held
  // pin, so a model generation swapped out during shutdown is freed here
  // and can never be resurrected through the drain path below (which
  // deliberately scores nothing and pins nothing).
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    live_.reset();
  }
  for (Pending& pending : leftovers) {
    Answer(std::move(pending),
           FailOrDegrade(pending.request, Status::Overloaded("engine shut down"),
                         /*handle=*/nullptr));
  }
}

std::shared_ptr<const ModelHandle> ServingEngine::CurrentModel() const {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return live_;
}

Outcome<uint64_t> ServingEngine::Publish(std::shared_ptr<ServableModel> model) {
  ISREC_TRACE_SPAN("serve.publish");
  if (Status valid = ValidateServable(model); !valid.ok()) {
    if (obs::MetricsEnabled()) {
      static obs::Counter& rejected =
          obs::GetCounter("serve.model_publish_rejected");
      rejected.Add(1);
    }
    return Outcome<uint64_t>(std::move(valid));
  }
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    // The handle is fully constructed before the swap: a worker pinning
    // concurrently sees either the old generation or the complete new
    // one, never a partial state.
    version = live_->version + 1;
    live_ = MakeHandle(std::move(model), version);
    live_num_items_.store(live_->num_items(), std::memory_order_release);
    live_version_.store(version, std::memory_order_release);
  }
  model_swaps_.fetch_add(1, std::memory_order_relaxed);
  SetModelVersionGauge(version);
  if (obs::MetricsEnabled()) {
    static obs::Counter& swaps = obs::GetCounter("serve.model_swaps");
    swaps.Add(1);
  }
  return version;
}

Status ServingEngine::ValidateRequest(const Request& request,
                                      Index num_items) const {
  if (request.k <= 0) {
    return Status::InvalidArgument("k must be > 0, got " +
                                   std::to_string(request.k));
  }
  if (request.options.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  for (Index item : request.history) {
    if (item < 0 || item >= num_items) {
      return Status::InvalidArgument(
          "history item " + std::to_string(item) + " outside catalog [0, " +
          std::to_string(num_items) + ")");
    }
  }
  for (Index item : request.candidates) {
    if (item < 0 || item >= num_items) {
      return Status::InvalidArgument(
          "candidate item " + std::to_string(item) + " outside catalog [0, " +
          std::to_string(num_items) + ")");
    }
  }
  return Status::Ok();
}

Recommendation ServingEngine::FallbackRecommendation(
    const Request& request, const ModelHandle* handle) const {
  const std::vector<float>& prior =
      (handle != nullptr && !handle->popularity().empty())
          ? handle->popularity()
          : config_.fallback_scores;
  // Without a pinned handle (shutdown drain) the prior itself bounds the
  // catalog for full-catalog requests.
  std::vector<Index> prior_catalog;
  if (request.candidates.empty() && handle == nullptr) {
    prior_catalog.resize(prior.size());
    std::iota(prior_catalog.begin(), prior_catalog.end(), 0);
  }
  const std::vector<Index>& candidates =
      !request.candidates.empty()
          ? request.candidates
          : (handle != nullptr ? handle->catalog : prior_catalog);
  std::vector<float> scores;
  scores.reserve(candidates.size());
  const Index known = static_cast<Index>(prior.size());
  for (Index item : candidates) {
    scores.push_back(item < known ? prior[item] : 0.0f);
  }
  return TopK(scores, candidates, request.k);
}

Outcome<Recommendation> ServingEngine::FailOrDegrade(const Request& request,
                                                     Status error,
                                                     const ModelHandle* handle) {
  const bool has_prior =
      (handle != nullptr && !handle->popularity().empty()) ||
      !config_.fallback_scores.empty();
  if (request.options.allow_degraded && has_prior) {
    return Outcome<Recommendation>(
        Status::Degraded("popularity-prior fallback (" + error.ToString() +
                         ")"),
        FallbackRecommendation(request, handle));
  }
  return Outcome<Recommendation>(std::move(error));
}

ServeStats ServingEngine::Stats() const {
  ServeStats stats = stats_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
    stats.shedding = shedding_;
  }
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    if (live_ != nullptr) {
      stats.model_version = live_->version;
      stats.model_epoch = live_->epoch();
    }
  }
  stats.model_swaps = model_swaps_.load(std::memory_order_relaxed);
  stats.alloc_count = alloc_count_.load(std::memory_order_relaxed);
  stats.alloc_bytes = alloc_bytes_.load(std::memory_order_relaxed);
  stats.alloc_requests = alloc_requests_.load(std::memory_order_relaxed);
  return stats;
}

void ServingEngine::Answer(Pending&& pending,
                           Outcome<Recommendation> outcome) {
  // Denominator of allocs/request: requests answered while the heap
  // hook was counting (toggling profiling mid-run keeps the ratio
  // honest — both numerator and denominator only tick while on).
  if (obs::heap::HeapProfilingEnabled()) {
    alloc_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.RecordOutcome(outcome.code());
  pending.promise.set_value(std::move(outcome));
}

std::future<Outcome<Recommendation>> ServingEngine::RecommendAsync(
    Request request) {
  // Everything the submit path allocates (validation messages, the
  // cache key, queue growth) is the "enqueue" phase.
  PhaseAllocScope alloc_scope(this, kAllocEnqueue);
  const auto start = Clock::now();
  // The request id travels through every span the pipeline emits for
  // this request (enqueue → queued → score → respond), keying its
  // /tracez timeline. Callers may pre-assign ids; 0 draws the next one.
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Validation reads the live catalog size without pinning; if a swap
  // lands between here and scoring, the worker re-validates against the
  // generation it actually pins.
  const uint64_t submit_version =
      live_version_.load(std::memory_order_acquire);
  const Index num_items = live_num_items_.load(std::memory_order_acquire);
  if (Status invalid = ValidateRequest(request, num_items); !invalid.ok()) {
    Pending rejected;
    rejected.request = std::move(request);
    std::future<Outcome<Recommendation>> future =
        rejected.promise.get_future();
    Answer(std::move(rejected), Outcome<Recommendation>(std::move(invalid)));
    return future;
  }
  Pending pending;
  pending.enqueued_at = start;
  pending.submit_version = submit_version;
  pending.trace_submit_ns = obs::TracingEnabled() ? obs::TraceClockNs() : 0;
  pending.deadline =
      request.options.deadline_ms > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            request.options.deadline_ms))
          : Clock::time_point::max();
  if (cache_ != nullptr) {
    pending.cache_key =
        RequestKey{request.user, request.k, submit_version, request.history,
                   request.candidates};
    if (std::optional<Recommendation> hit = cache_->Get(pending.cache_key)) {
      hit->from_cache = true;
      if (obs::heap::HeapProfilingEnabled()) {
        alloc_requests_.fetch_add(1, std::memory_order_relaxed);
      }
      stats_.RecordRequest(MsSince(start, Clock::now()), /*cache_hit=*/true);
      stats_.RecordOutcome(StatusCode::kOk);
      if (pending.trace_submit_ns != 0) {
        obs::RecordRequestSpan("serve.req.cache_hit", pending.trace_submit_ns,
                               obs::TraceClockNs(), request.id);
      }
      std::promise<Outcome<Recommendation>> ready;
      ready.set_value(Outcome<Recommendation>(*std::move(hit)));
      return ready.get_future();
    }
  }
  const uint64_t rid = request.id;
  const uint64_t submit_ns = pending.trace_submit_ns;
  pending.request = std::move(request);
  std::future<Outcome<Recommendation>> future = pending.promise.get_future();

  bool was_empty = false;
  bool admitted = true;
  Status reject_reason;
  std::optional<Pending> shed_victim;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (config_.shed_high_watermark > 0) {
      // Admission control: never block a producer. Depth crossing the
      // high watermark enters shedding mode; falling back to the low
      // watermark exits it (hysteresis, so the engine does not flap at
      // the boundary).
      if (closed_) {
        admitted = false;
        reject_reason = Status::Overloaded("engine shut down");
      } else {
        const Index depth = static_cast<Index>(queue_.size());
        if (!shedding_ && depth >= config_.shed_high_watermark) {
          shedding_ = true;
        }
        if (shedding_ && depth <= config_.shed_low_watermark) {
          shedding_ = false;
        }
        if (shedding_) {
          // Shed the lowest-priority request: a strictly lower-priority
          // queued victim is displaced, otherwise the newcomer itself is
          // shed (ties shed the newest arrival).
          auto victim = queue_.begin();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->request.options.priority <
                victim->request.options.priority) {
              victim = it;
            }
          }
          if (!queue_.empty() && victim->request.options.priority <
                                     pending.request.options.priority) {
            shed_victim = std::move(*victim);
            queue_.erase(victim);
            queue_.push_back(std::move(pending));
          } else {
            admitted = false;
            reject_reason = Status::Overloaded(
                "queue depth at shed watermark (" +
                std::to_string(config_.shed_high_watermark) + ")");
          }
        } else {
          was_empty = queue_.empty();
          queue_.push_back(std::move(pending));
        }
      }
    } else {
      // Blocking backpressure (the v1 default): wait for queue room.
      queue_not_full_.wait(lock, [this] {
        return closed_ ||
               static_cast<Index>(queue_.size()) < config_.queue_capacity;
      });
      if (closed_) {
        admitted = false;
        reject_reason = Status::Overloaded("engine shut down");
      } else {
        was_empty = queue_.empty();
        queue_.push_back(std::move(pending));
      }
    }
    SetQueueDepth(queue_.size());
  }
  if (shed_victim.has_value() || !admitted) {
    // Shed answers may degrade to the live model's popularity prior;
    // pin it only on these cold paths (never per admitted request).
    const std::shared_ptr<const ModelHandle> handle = CurrentModel();
    if (shed_victim.has_value()) {
      if (shed_victim->trace_submit_ns != 0) {
        obs::RecordRequestSpan("serve.req.shed", shed_victim->trace_submit_ns,
                               obs::TraceClockNs(), shed_victim->request.id);
      }
      Outcome<Recommendation> outcome = FailOrDegrade(
          shed_victim->request,
          Status::Overloaded("displaced by higher-priority request"),
          handle.get());
      Answer(std::move(*shed_victim), std::move(outcome));
    }
    if (!admitted) {
      if (submit_ns != 0) {
        obs::RecordRequestSpan("serve.req.shed", submit_ns,
                               obs::TraceClockNs(), rid);
      }
      Outcome<Recommendation> outcome = FailOrDegrade(
          pending.request, std::move(reject_reason), handle.get());
      Answer(std::move(pending), std::move(outcome));
      return future;
    }
  }
  if (submit_ns != 0) {
    obs::RecordRequestSpan("serve.req.enqueue", submit_ns, obs::TraceClockNs(),
                           rid);
  }
  // Only the empty -> non-empty transition needs a wakeup: a lingering
  // worker drains the queue at its batch deadline anyway, and waking it
  // per request would cost a context switch each time.
  if (was_empty) queue_not_empty_.notify_one();
  return future;
}

Outcome<Recommendation> ServingEngine::Recommend(const Request& request) {
  return RecommendAsync(request).get();
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    std::vector<Pending> drained;
    bool leftover = false;
    bool shutting_down = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return closed_ || !queue_.empty(); });
      if (closed_) {
        shutting_down = true;
        // Shutdown: ANSWER everything still queued (kOverloaded or a
        // degraded fallback), never score it, never drop it.
        while (!queue_.empty()) {
          drained.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        SetQueueDepth(0);
      } else {
        // Micro-batching: grab what is already waiting, then (optionally)
        // linger up to the batch window for concurrent requests to
        // arrive. Requests found already past their deadline are set
        // aside and answered kDeadlineExceeded without scoring.
        PhaseAllocScope alloc_scope(this, kAllocBatch);
        ISREC_TRACE_SPAN("serve.batch_assembly");
        const auto deadline =
            Clock::now() + std::chrono::microseconds(config_.batch_window_us);
        while (static_cast<Index>(batch.size()) < config_.max_batch_size) {
          if (!queue_.empty()) {
            Pending pending = std::move(queue_.front());
            queue_.pop_front();
            // Clocks are only read here for requests that carry a
            // deadline or a trace context, so the happy path (no
            // deadline, tracing off) stays syscall-free in this lock.
            if (pending.trace_submit_ns != 0 && obs::TracingEnabled()) {
              pending.trace_dequeue_ns = obs::TraceClockNs();
            }
            if (pending.deadline != Clock::time_point::max() &&
                pending.deadline <= Clock::now()) {
              expired.push_back(std::move(pending));
            } else {
              batch.push_back(std::move(pending));
            }
            continue;
          }
          if (closed_ || config_.batch_window_us == 0) break;
          ISREC_TRACE_SPAN("serve.linger");
          if (queue_not_empty_.wait_until(lock, deadline) ==
                  std::cv_status::timeout &&
              queue_.empty()) {
            break;
          }
        }
        leftover = !queue_.empty();
        SetQueueDepth(queue_.size());
      }
    }
    if (shutting_down) {
      // The drain path pins NO model handle: leftovers are answered from
      // the config-level prior (or plain kOverloaded) so shutdown never
      // extends any model generation's lifetime.
      for (Pending& pending : drained) {
        Answer(std::move(pending),
               FailOrDegrade(pending.request,
                             Status::Overloaded("engine shut down"),
                             /*handle=*/nullptr));
      }
      return;
    }
    queue_not_full_.notify_all();
    // Producers skip the wakeup while the queue is non-empty, so hand
    // any overflow beyond this batch to a sibling worker explicitly.
    if (leftover) queue_not_empty_.notify_one();
    if (obs::TracingEnabled()) {
      // Per-request wait + assembly spans, outside the queue lock.
      const uint64_t assembled_ns = obs::TraceClockNs();
      for (const Pending& pending : expired) {
        if (pending.trace_dequeue_ns == 0) continue;
        obs::RecordRequestSpan("serve.req.queued", pending.trace_submit_ns,
                               pending.trace_dequeue_ns, pending.request.id);
      }
      for (const Pending& pending : batch) {
        if (pending.trace_dequeue_ns == 0) continue;
        obs::RecordRequestSpan("serve.req.queued", pending.trace_submit_ns,
                               pending.trace_dequeue_ns, pending.request.id);
        obs::RecordRequestSpan("serve.req.batch_assembly",
                               pending.trace_dequeue_ns, assembled_ns,
                               pending.request.id);
      }
    }
    for (Pending& pending : expired) {
      Answer(std::move(pending),
             Outcome<Recommendation>(Status::DeadlineExceeded(
                 "deadline expired while queued")));
    }
    if (!batch.empty()) ProcessBatch(std::move(batch));
  }
}

void ServingEngine::ProcessBatch(std::vector<Pending> batch) {
  // Pin the live model generation ONCE for the whole batch: every
  // request below is scored by exactly this version, even if a Publish
  // lands mid-score. The pin releases when `handle` leaves scope.
  const std::shared_ptr<const ModelHandle> handle = CurrentModel();
  ISREC_CHECK(handle != nullptr);
  // Requests admitted under a different generation were validated
  // against that generation's catalog; re-validate them against the one
  // actually scoring (a shrunk catalog must reject, not index out of
  // range). Requests submitted under this generation skip the re-check.
  {
    std::vector<Pending> still_valid;
    still_valid.reserve(batch.size());
    for (Pending& pending : batch) {
      if (pending.submit_version != handle->version) {
        Status revalidated =
            ValidateRequest(pending.request, handle->num_items());
        if (!revalidated.ok()) {
          Answer(std::move(pending),
                 Outcome<Recommendation>(std::move(revalidated)));
          continue;
        }
        // Re-tag the cache key: entries must carry the version that
        // produces them, so the second lookup and the Put below can
        // never cross generations.
        pending.cache_key.model_version = handle->version;
        pending.submit_version = handle->version;
      }
      still_valid.push_back(std::move(pending));
    }
    batch = std::move(still_valid);
    if (batch.empty()) return;
  }
  // Second cache lookup: a duplicate request that was still in flight at
  // submit time (so its first lookup missed) may have completed while
  // this one waited in the queue. Bursts of repeated requests otherwise
  // never hit the cache at all.
  if (cache_ != nullptr) {
    std::vector<Pending> misses;
    misses.reserve(batch.size());
    const auto now = Clock::now();
    for (Pending& pending : batch) {
      std::optional<Recommendation> hit = cache_->Get(pending.cache_key);
      if (!hit.has_value()) {
        misses.push_back(std::move(pending));
        continue;
      }
      hit->from_cache = true;
      stats_.RecordRequest(MsSince(pending.enqueued_at, now),
                           /*cache_hit=*/true);
      if (pending.trace_dequeue_ns != 0) {
        obs::RecordRequestSpan("serve.req.cache_hit",
                               pending.trace_dequeue_ns, obs::TraceClockNs(),
                               pending.request.id);
      }
      Answer(std::move(pending), Outcome<Recommendation>(*std::move(hit)));
    }
    batch = std::move(misses);
    if (batch.empty()) return;
  }
  // "score" covers the scorer-input build plus the ScoreBatch call;
  // everything after (TopK, caching, answering) is "respond". optional
  // so the score scope flushes before the respond scope opens —
  // AllocationCounter charges the innermost scope only.
  std::optional<PhaseAllocScope> score_alloc(std::in_place, this, kAllocScore);
  std::vector<Index> users;
  std::vector<std::vector<Index>> histories;
  std::vector<std::vector<Index>> candidate_lists;
  users.reserve(batch.size());
  histories.reserve(batch.size());
  candidate_lists.reserve(batch.size());
  for (const Pending& pending : batch) {
    users.push_back(pending.request.user);
    histories.push_back(pending.request.history);
    candidate_lists.push_back(pending.request.candidates.empty()
                                  ? handle->catalog
                                  : pending.request.candidates);
  }
  const uint64_t score_start_ns =
      obs::TracingEnabled() ? obs::TraceClockNs() : 0;
  Outcome<std::vector<std::vector<float>>> scored = [&] {
    ISREC_TRACE_SPAN("serve.score_batch");
    try {
      fault_.OnScore();
    } catch (const std::exception& e) {
      return Outcome<std::vector<std::vector<float>>>(
          Status::ModelError(e.what()));
    }
    return handle->scorer().TryScoreBatch(users, histories, candidate_lists);
  }();
  const uint64_t score_end_ns = score_start_ns != 0 ? obs::TraceClockNs() : 0;
  if (score_end_ns != 0) {
    // The batch is scored by one shared ScoreBatch call; every member's
    // timeline gets the same score span (that sharing is the point of
    // micro-batching, and /tracez should show it).
    for (const Pending& pending : batch) {
      if (pending.trace_submit_ns == 0) continue;
      obs::RecordRequestSpan("serve.req.score", score_start_ns, score_end_ns,
                             pending.request.id);
    }
  }
  score_alloc.reset();
  PhaseAllocScope respond_alloc(this, kAllocRespond);
  if (!scored.has_value()) {
    // Model failure: the whole batch fails over as one — degraded
    // fallbacks where allowed, kModelError otherwise.
    Status error = scored.status().ok()
                       ? Status::ModelError("scoring returned no value")
                       : scored.status();
    for (Pending& pending : batch) {
      const uint64_t rid = pending.request.id;
      const bool traced = pending.trace_submit_ns != 0 && score_end_ns != 0;
      Answer(std::move(pending),
             FailOrDegrade(pending.request, error, handle.get()));
      if (traced) {
        obs::RecordRequestSpan("serve.req.respond", score_end_ns,
                               obs::TraceClockNs(), rid);
      }
    }
    return;
  }
  const std::vector<std::vector<float>>& scores = *scored;
  const auto done = Clock::now();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(batch.size());
  for (const Pending& pending : batch) {
    latencies_ms.push_back(MsSince(pending.enqueued_at, done));
  }
  // Record before fulfilling any promise so a caller that wakes on its
  // future never observes stats missing its own request.
  stats_.RecordProcessedBatch(static_cast<Index>(batch.size()), latencies_ms);
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint64_t rid = batch[i].request.id;
    const bool traced = batch[i].trace_submit_ns != 0 && score_end_ns != 0;
    Recommendation rec =
        TopK(scores[i], candidate_lists[i], batch[i].request.k);
    rec.model_version = handle->version;
    // Cache even a too-late result: it is correct, and the next
    // identical request gets it instantly. The key carries the pinned
    // version, so entries never outlive their generation's lookups.
    if (cache_ != nullptr) cache_->Put(batch[i].cache_key, rec);
    if (batch[i].deadline != Clock::time_point::max() &&
        batch[i].deadline <= done) {
      // Post-score enforcement: the work happened but the caller's
      // deadline did not survive it; the contract is a typed outcome,
      // not a late answer.
      Answer(std::move(batch[i]),
             Outcome<Recommendation>(
                 Status::DeadlineExceeded("scored past deadline")));
    } else {
      Answer(std::move(batch[i]), Outcome<Recommendation>(std::move(rec)));
    }
    if (traced) {
      obs::RecordRequestSpan("serve.req.respond", score_end_ns,
                             obs::TraceClockNs(), rid);
    }
  }
}

void RegisterAdminSections(obs::AdminServer& admin, ServingEngine& engine) {
  admin.AddVarzSection("serve_stats", [&engine] {
    return ServeStatsJson(engine.Stats());
  });
  // Which SIMD kernel set this replica runs (compiled-in ISA targets,
  // runtime-selected table, per-kernel dispatch counts) — the serving
  // counterpart of the `kernels:` line in the build info string.
  admin.AddVarzSection("kernels", [] { return kernels::VarzJson(); });
  admin.AddStatuszSection("Serving", [&engine] {
    const ServeStats stats = engine.Stats();
    const EngineConfig& config = engine.config();
    char line[192];
    auto row = [&line](const char* name, const std::string& value) {
      std::snprintf(line, sizeof(line), "<tr><td>%s</td><td>%s</td></tr>",
                    name, value.c_str());
      return std::string(line);
    };
    auto num = [&line](double v) {
      std::snprintf(line, sizeof(line), "%.4g", v);
      return std::string(line);
    };
    std::string html = "<table><tr><th>serve_stat</th><th>value</th></tr>";
    html += row("model_version", std::to_string(stats.model_version));
    html += row("model_epoch", std::to_string(stats.model_epoch));
    html += row("model_swaps", std::to_string(stats.model_swaps));
    html += row("requests", std::to_string(stats.num_requests));
    html += row("qps", num(stats.qps));
    html += row("p50_ms", num(stats.p50_ms));
    html += row("p95_ms", num(stats.p95_ms));
    html += row("p99_ms", num(stats.p99_ms));
    html += row("mean_batch_size", num(stats.mean_batch_size));
    html += row("cache_hit_rate", num(stats.cache_hit_rate()));
    html += row("ok", std::to_string(stats.ok));
    html += row("rejected", std::to_string(stats.rejected));
    html += row("deadline_exceeded", std::to_string(stats.deadline_exceeded));
    html += row("degraded", std::to_string(stats.degraded));
    html += row("invalid_arguments", std::to_string(stats.invalid_arguments));
    html += row("model_errors", std::to_string(stats.model_errors));
    html += row("alloc_requests", std::to_string(stats.alloc_requests));
    html += row("allocs_per_request", num(stats.allocs_per_request()));
    html += row("alloc_bytes_per_request",
                num(stats.alloc_bytes_per_request()));
    html += "</table><table><tr><th>engine config</th><th>value</th></tr>";
    html += row("num_threads", std::to_string(config.num_threads));
    html += row("max_batch_size", std::to_string(config.max_batch_size));
    html += row("batch_window_us", std::to_string(config.batch_window_us));
    html += row("queue_capacity", std::to_string(config.queue_capacity));
    html += row("shed_high_watermark",
                std::to_string(config.shed_high_watermark));
    html += row("shed_low_watermark",
                std::to_string(config.shed_low_watermark));
    html += row("cache_capacity", std::to_string(config.cache_capacity));
    html += "</table>";
    return html;
  });
}

}  // namespace isrec::serve

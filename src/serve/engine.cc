#include "serve/engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "utils/check.h"

namespace isrec::serve {
namespace {

// Queue-depth gauge, written inside the queue lock on every transition
// so the snapshot is an exact instantaneous depth.
void SetQueueDepth(size_t depth) {
  if (!obs::MetricsEnabled()) return;
  static obs::Gauge& gauge = obs::GetGauge("serve.queue_depth");
  gauge.Set(static_cast<double>(depth));
}

// FNV-1a, mixing every field that determines the response.
uint64_t HashCombine(uint64_t hash, uint64_t value) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int shift = 0; shift < 64; shift += 8) {
    hash = (hash ^ ((value >> shift) & 0xff)) * kPrime;
  }
  return hash;
}

}  // namespace

Recommendation TopK(const std::vector<float>& scores,
                    const std::vector<Index>& candidates, Index k) {
  ISREC_CHECK_EQ(scores.size(), candidates.size());
  const Index n = static_cast<Index>(candidates.size());
  const Index kk = std::min(k, n);
  // Scratch reused across calls; workers call this once per request.
  thread_local std::vector<Index> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  const auto better = [&](Index a, Index b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return candidates[a] < candidates[b];
  };
  std::partial_sort(order.begin(), order.begin() + kk, order.end(), better);
  Recommendation result;
  result.items.reserve(kk);
  result.scores.reserve(kk);
  for (Index i = 0; i < kk; ++i) {
    result.items.push_back(candidates[order[i]]);
    result.scores.push_back(scores[order[i]]);
  }
  return result;
}

ServingEngine::ServingEngine(eval::Recommender& model, Index num_items,
                             EngineConfig config)
    : model_(model), config_(config) {
  ISREC_CHECK_GT(config.num_threads, 0);
  ISREC_CHECK_GT(config.max_batch_size, 0);
  ISREC_CHECK_GT(config.queue_capacity, 0);
  ISREC_CHECK_GE(config.batch_window_us, 0);
  ISREC_CHECK_GT(num_items, 0);
  full_catalog_.resize(num_items);
  std::iota(full_catalog_.begin(), full_catalog_.end(), 0);
  if (config.cache_capacity > 0) {
    cache_ = std::make_unique<LruCache<uint64_t, Recommendation>>(
        config.cache_capacity);
  }
  pool_ = std::make_unique<utils::ThreadPool>(config.num_threads);
  for (Index i = 0; i < config.num_threads; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    closed_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  pool_.reset();  // Joins workers after they drain the queue.
}

uint64_t ServingEngine::CacheKey(const Request& request) const {
  uint64_t hash = 14695981039346656037ull;
  hash = HashCombine(hash, static_cast<uint64_t>(request.user));
  hash = HashCombine(hash, static_cast<uint64_t>(request.k));
  hash = HashCombine(hash, request.history.size());
  for (Index item : request.history) {
    hash = HashCombine(hash, static_cast<uint64_t>(item));
  }
  hash = HashCombine(hash, request.candidates.size());
  for (Index item : request.candidates) {
    hash = HashCombine(hash, static_cast<uint64_t>(item));
  }
  return hash;
}

std::future<Recommendation> ServingEngine::RecommendAsync(Request request) {
  const auto start = std::chrono::steady_clock::now();
  Pending pending;
  pending.enqueued_at = start;
  if (cache_ != nullptr) {
    pending.cache_key = CacheKey(request);
    if (std::optional<Recommendation> hit = cache_->Get(pending.cache_key)) {
      hit->from_cache = true;
      stats_.RecordRequest(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count(),
          /*cache_hit=*/true);
      std::promise<Recommendation> ready;
      ready.set_value(*std::move(hit));
      return ready.get_future();
    }
  }
  pending.request = std::move(request);
  std::future<Recommendation> future = pending.promise.get_future();
  bool was_empty;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_not_full_.wait(lock, [this] {
      return closed_ ||
             static_cast<Index>(queue_.size()) < config_.queue_capacity;
    });
    ISREC_CHECK_MSG(!closed_, "Recommend on a shut-down ServingEngine");
    was_empty = queue_.empty();
    queue_.push_back(std::move(pending));
    SetQueueDepth(queue_.size());
  }
  // Only the empty -> non-empty transition needs a wakeup: a lingering
  // worker drains the queue at its batch deadline anyway, and waking it
  // per request would cost a context switch each time.
  if (was_empty) queue_not_empty_.notify_one();
  return future;
}

Recommendation ServingEngine::Recommend(const Request& request) {
  return RecommendAsync(request).get();
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    bool leftover;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Closed and drained.
      // Micro-batching: grab what is already waiting, then (optionally)
      // linger up to the batch window for concurrent requests to arrive.
      ISREC_TRACE_SPAN("serve.batch_assembly");
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(config_.batch_window_us);
      while (static_cast<Index>(batch.size()) < config_.max_batch_size) {
        if (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          continue;
        }
        if (closed_ || config_.batch_window_us == 0) break;
        ISREC_TRACE_SPAN("serve.linger");
        if (queue_not_empty_.wait_until(lock, deadline) ==
                std::cv_status::timeout &&
            queue_.empty()) {
          break;
        }
      }
      leftover = !queue_.empty();
      SetQueueDepth(queue_.size());
    }
    queue_not_full_.notify_all();
    // Producers skip the wakeup while the queue is non-empty, so hand
    // any overflow beyond this batch to a sibling worker explicitly.
    if (leftover) queue_not_empty_.notify_one();
    ProcessBatch(std::move(batch));
  }
}

void ServingEngine::ProcessBatch(std::vector<Pending> batch) {
  // Second cache lookup: a duplicate request that was still in flight at
  // submit time (so its first lookup missed) may have completed while
  // this one waited in the queue. Bursts of repeated requests otherwise
  // never hit the cache at all.
  if (cache_ != nullptr) {
    std::vector<Pending> misses;
    misses.reserve(batch.size());
    const auto now = std::chrono::steady_clock::now();
    for (Pending& pending : batch) {
      std::optional<Recommendation> hit = cache_->Get(pending.cache_key);
      if (!hit.has_value()) {
        misses.push_back(std::move(pending));
        continue;
      }
      hit->from_cache = true;
      stats_.RecordRequest(std::chrono::duration<double, std::milli>(
                               now - pending.enqueued_at)
                               .count(),
                           /*cache_hit=*/true);
      pending.promise.set_value(*std::move(hit));
    }
    batch = std::move(misses);
    if (batch.empty()) return;
  }
  std::vector<Index> users;
  std::vector<std::vector<Index>> histories;
  std::vector<std::vector<Index>> candidate_lists;
  users.reserve(batch.size());
  histories.reserve(batch.size());
  candidate_lists.reserve(batch.size());
  for (const Pending& pending : batch) {
    users.push_back(pending.request.user);
    histories.push_back(pending.request.history);
    candidate_lists.push_back(pending.request.candidates.empty()
                                  ? full_catalog_
                                  : pending.request.candidates);
  }
  std::vector<std::vector<float>> scores;
  {
    ISREC_TRACE_SPAN("serve.score_batch");
    scores = model_.ScoreBatch(users, histories, candidate_lists);
  }
  const auto done = std::chrono::steady_clock::now();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(batch.size());
  for (const Pending& pending : batch) {
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               done - pending.enqueued_at)
                               .count());
  }
  // Record before fulfilling any promise so a caller that wakes on its
  // future never observes stats missing its own request.
  stats_.RecordProcessedBatch(static_cast<Index>(batch.size()), latencies_ms);
  for (size_t i = 0; i < batch.size(); ++i) {
    Recommendation rec =
        TopK(scores[i], candidate_lists[i], batch[i].request.k);
    if (cache_ != nullptr) cache_->Put(batch[i].cache_key, rec);
    batch[i].promise.set_value(std::move(rec));
  }
}

}  // namespace isrec::serve

#include "serve/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace isrec::serve {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double UniformUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseFaultSpec(const std::string& spec, FaultConfig* config) {
  FaultConfig parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) return false;
    const std::string key = pair.substr(0, colon);
    const std::string value = pair.substr(colon + 1);
    if (key == "score_throw") {
      if (!ParseDouble(value, &parsed.score_throw)) return false;
      if (parsed.score_throw < 0.0 || parsed.score_throw > 1.0) return false;
    } else if (key == "score_delay_ms") {
      if (!ParseDouble(value, &parsed.score_delay_ms)) return false;
      if (parsed.score_delay_ms < 0.0) return false;
    } else if (key == "seed") {
      if (!ParseUint64(value, &parsed.seed)) return false;
    } else {
      return false;
    }
    pos = comma + 1;
  }
  *config = parsed;
  return true;
}

FaultConfig FaultConfigFromEnv() {
  const char* spec = std::getenv("ISREC_FAULT");
  if (spec == nullptr || spec[0] == '\0') return {};
  FaultConfig config;
  if (!ParseFaultSpec(spec, &config)) {
    std::fprintf(stderr,
                 "ignoring malformed ISREC_FAULT spec '%s' (grammar: "
                 "score_throw:P,score_delay_ms:MS,seed:N)\n",
                 spec);
    return {};
  }
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_state_(config.seed) {}

void FaultInjector::set_before_score(std::function<void()> hook) {
  before_score_ = std::move(hook);
}

void FaultInjector::OnScore() {
  score_calls_.fetch_add(1, std::memory_order_relaxed);
  if (before_score_) before_score_();
  if (config_.score_delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.score_delay_ms));
  }
  if (config_.score_throw > 0.0) {
    bool fire;
    {
      std::lock_guard<std::mutex> lock(rng_mutex_);
      fire = UniformUnit(&rng_state_) < config_.score_throw;
    }
    if (fire) throw std::runtime_error("injected score fault");
  }
}

}  // namespace isrec::serve

#ifndef ISREC_SERVE_QUANTIZED_H_
#define ISREC_SERVE_QUANTIZED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/recommender.h"
#include "models/seq_base.h"
#include "tensor/tensor.h"

namespace isrec::serve {

/// Per-row symmetric int8 quantization of a dense [rows, cols] fp32
/// matrix: q[r, c] = clamp(lrintf(x[r, c] * 127 / amax_r), -127, 127)
/// with scale[r] = amax_r / 127. An all-zero source row gets scale 0
/// and an all-zero q row, so its dequantized dot contribution is
/// exactly 0 (never 0/0). Quantization runs through the shared scalar
/// kernel on every ISA, so the quantized values — and therefore int8
/// scores — are identical across scalar/AVX2/NEON.
struct QuantizedMatrix {
  Index rows = 0;
  Index cols = 0;
  std::vector<int8_t> data;   // [rows, cols]
  std::vector<float> scales;  // [rows]
};

QuantizedMatrix QuantizeRowsInt8(const float* src, Index rows, Index cols);

/// Serving-time int8 scorer: wraps a sequential model, keeping its fp32
/// encoder (histories -> last states) but replacing catalog scoring
/// with int8 x int8 -> int32 dot products over the quantized item
/// table — no dequantize in the inner loop, one fp32 rescale per
/// output. Built at LoadCheckpoint time (see LoadOptions); opt-in via
/// `isrec_serve --quantize int8`.
///
/// Tolerance contract: int8 scores are NOT bitwise equal to fp32
/// scores; the documented guarantee is ranking agreement — top-K
/// overlap@10 >= 0.99 against the fp32 scorer on the synthetic
/// checkpoints (asserted by tests/quantize_test.cc). Training is
/// exempt from quantization entirely and stays fp32
/// bitwise-deterministic.
///
/// Thread-safe for concurrent Score/ScoreBatch like the base model:
/// the encoder seam carries the base's refcounted eval-mode guard, and
/// scoring reads only const quantized tables.
class QuantizedScorer : public eval::Recommender {
 public:
  /// Quantizes the first `num_items` rows of the model's (already
  /// built) item embedding table.
  QuantizedScorer(models::SequentialModelBase& base, Index num_items);

  std::string name() const override;

  /// Trains the wrapped model, then re-quantizes the item table.
  void Fit(const data::Dataset& dataset,
           const data::LeaveOneOutSplit& split) override;

  std::vector<float> Score(Index user, const std::vector<Index>& history,
                           const std::vector<Index>& candidates) override;

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<Index>& users,
      const std::vector<std::vector<Index>>& histories,
      const std::vector<std::vector<Index>>& candidate_lists) override;

  /// The quantized item table (tests: all-zero-row scale guard).
  const QuantizedMatrix& item_matrix() const { return items_; }

  models::SequentialModelBase& base() { return base_; }

 private:
  void QuantizeItemTable();

  models::SequentialModelBase& base_;
  Index num_items_;
  Index dim_ = 0;
  QuantizedMatrix items_;  // [num_items, d]
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_QUANTIZED_H_

#include "serve/quantized.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/kernels/registry.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace isrec::serve {

QuantizedMatrix QuantizeRowsInt8(const float* src, Index rows, Index cols) {
  ISREC_CHECK_GE(rows, 0);
  ISREC_CHECK_GT(cols, 0);
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<size_t>(rows) * cols);
  q.scales.resize(static_cast<size_t>(rows));
  if (rows == 0) return q;
  const kernels::KernelTable& kt = kernels::Active();
  kernels::CountDispatch(kernels::KernelId::kQuantizeI8);
  utils::ParallelFor(0, rows, utils::GrainForCost(2 * cols),
                     [&](Index r0, Index r1) {
                       kt.quantize_rows_i8(src, q.data.data(),
                                           q.scales.data(), r0, r1, cols);
                     });
  return q;
}

QuantizedScorer::QuantizedScorer(models::SequentialModelBase& base,
                                 Index num_items)
    : base_(base), num_items_(num_items) {
  ISREC_CHECK_GT(num_items, 0);
  QuantizeItemTable();
}

void QuantizedScorer::QuantizeItemTable() {
  const Tensor& table = base_.item_embedding_table();  // [vocab, d]
  ISREC_CHECK_EQ(table.ndim(), 2);
  ISREC_CHECK_GE(table.dim(0), num_items_);
  dim_ = table.dim(1);
  items_ = QuantizeRowsInt8(table.data(), num_items_, dim_);
}

std::string QuantizedScorer::name() const { return base_.name() + "+int8"; }

void QuantizedScorer::Fit(const data::Dataset& dataset,
                          const data::LeaveOneOutSplit& split) {
  base_.Fit(dataset, split);
  QuantizeItemTable();
}

std::vector<float> QuantizedScorer::Score(
    Index user, const std::vector<Index>& history,
    const std::vector<Index>& candidates) {
  return ScoreBatch({user}, {history}, {candidates})[0];
}

std::vector<std::vector<float>> QuantizedScorer::ScoreBatch(
    const std::vector<Index>& users,
    const std::vector<std::vector<Index>>& histories,
    const std::vector<std::vector<Index>>& candidate_lists) {
  ISREC_CHECK_EQ(users.size(), candidate_lists.size());
  ISREC_TRACE_SPAN("quantized.score_batch");

  // fp32 encoder (unchanged vs the base model), then per-row symmetric
  // quantization of the query states. Catalog side was quantized once
  // at construction.
  Tensor last = base_.EncodeStatesForServing(users, histories);  // [B, d]
  const Index b_n = static_cast<Index>(users.size());
  QuantizedMatrix q_states = QuantizeRowsInt8(last.data(), b_n, dim_);

  const kernels::KernelTable& kt = kernels::Active();
  std::vector<std::vector<float>> result;
  result.reserve(users.size());

  const bool shared_candidates =
      b_n > 1 &&
      std::all_of(candidate_lists.begin() + 1, candidate_lists.end(),
                  [&](const std::vector<Index>& c) {
                    return c == candidate_lists[0];
                  });

  // Gathers candidate rows of the quantized item table into a dense
  // [C, d] int8 matrix (+ per-row scales) that gemm_i8_rows can stream.
  auto gather = [&](const std::vector<Index>& cand, std::vector<int8_t>* rows,
                    std::vector<float>* scales) {
    rows->resize(cand.size() * static_cast<size_t>(dim_));
    scales->resize(cand.size());
    for (size_t j = 0; j < cand.size(); ++j) {
      const Index id = cand[j];
      ISREC_CHECK_GE(id, 0);
      ISREC_CHECK_LT(id, num_items_);
      std::memcpy(rows->data() + j * dim_, items_.data.data() + id * dim_,
                  static_cast<size_t>(dim_));
      (*scales)[j] = items_.scales[id];
    }
  };

  if (shared_candidates || b_n == 1) {
    const std::vector<Index>& cand = candidate_lists[0];
    const Index c_n = static_cast<Index>(cand.size());

    // Full-catalog fast path: candidates are exactly [0, num_items), so
    // the quantized table is used in place — no gather at all. This is
    // the serving hot path (ServingEngine ranks the whole catalog).
    bool identity = c_n == num_items_;
    if (identity) {
      for (Index j = 0; j < c_n; ++j) {
        if (cand[j] != j) {
          identity = false;
          break;
        }
      }
    }
    std::vector<int8_t> gathered;
    std::vector<float> gathered_scales;
    const int8_t* brows = items_.data.data();
    const float* bscales = items_.scales.data();
    if (!identity) {
      gather(cand, &gathered, &gathered_scales);
      brows = gathered.data();
      bscales = gathered_scales.data();
    }

    std::vector<float> scores(static_cast<size_t>(b_n) * c_n);
    kernels::CountDispatch(kernels::KernelId::kGemmI8);
    utils::ParallelFor(0, b_n, utils::GrainForCost(c_n * dim_),
                       [&](Index i0, Index i1) {
                         kt.gemm_i8_rows(q_states.data.data(),
                                         q_states.scales.data(), brows,
                                         bscales, scores.data(), i0, i1, c_n,
                                         dim_);
                       });
    const float* data = scores.data();
    for (Index i = 0; i < b_n; ++i) {
      result.emplace_back(data + i * c_n, data + (i + 1) * c_n);
    }
  } else {
    // Mixed-candidate traffic: per-request gather + one-row int8 gemm.
    kernels::CountDispatch(kernels::KernelId::kGemmI8);
    for (Index i = 0; i < b_n; ++i) {
      const std::vector<Index>& cand = candidate_lists[i];
      const Index c_n = static_cast<Index>(cand.size());
      std::vector<int8_t> gathered;
      std::vector<float> gathered_scales;
      gather(cand, &gathered, &gathered_scales);
      std::vector<float> scores(static_cast<size_t>(c_n));
      kt.gemm_i8_rows(q_states.data.data() + i * dim_,
                      q_states.scales.data() + i, gathered.data(),
                      gathered_scales.data(), scores.data(), 0, 1, c_n, dim_);
      result.push_back(std::move(scores));
    }
  }
  return result;
}

}  // namespace isrec::serve

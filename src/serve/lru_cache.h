#ifndef ISREC_SERVE_LRU_CACHE_H_
#define ISREC_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "utils/check.h"

namespace isrec::serve {

/// Thread-safe least-recently-used cache with hit/miss counters.
///
/// Get promotes the entry to most-recently-used and returns a copy of the
/// value (entries may be evicted by other threads at any time, so
/// references into the cache would dangle). Put inserts or refreshes and
/// evicts the LRU entry once size exceeds capacity.
///
/// Entries are stored under the FULL key K and looked up by equality;
/// `Hash` only places them in buckets. Two distinct keys that hash to
/// the same value therefore coexist — one can never be served the
/// other's entry (pinned by lru_cache_test with a constant hash).
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    ISREC_CHECK_GT(capacity, 0u);
  }

  std::optional<V> Get(const K& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  void Put(const K& key, V value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
    if (index_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Most-recently-used entry first.
  std::list<std::pair<K, V>> entries_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_LRU_CACHE_H_

#ifndef ISREC_SERVE_ENGINE_H_
#define ISREC_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/recommender.h"
#include "serve/fault.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"
#include "utils/status.h"
#include "utils/thread_pool.h"

namespace isrec::obs {
class AdminServer;
}  // namespace isrec::obs

namespace isrec::serve {

struct EngineConfig {
  /// Worker threads draining the request queue. Even with one hardware
  /// core, multiple workers overlap queue waiting with scoring; the main
  /// speedup over per-request Score comes from micro-batching.
  Index num_threads = 4;
  /// Largest number of requests scored in one ScoreBatch call.
  Index max_batch_size = 32;
  /// After popping the first request of a batch, a worker waits up to
  /// this long for more requests to coalesce. 0 = score immediately.
  Index batch_window_us = 200;
  /// Bound of the MPMC request queue; Recommend blocks when full
  /// (backpressure instead of unbounded memory growth) UNLESS admission
  /// control is on (shed_high_watermark > 0), in which case producers
  /// never block — excess traffic is shed with kOverloaded instead.
  Index queue_capacity = 4096;
  /// Entries in the (user, history, k, candidates)-keyed LRU response
  /// cache. 0 disables caching.
  Index cache_capacity = 0;

  /// Admission control. When shed_high_watermark > 0: once queue depth
  /// reaches the high watermark the engine enters shedding mode and stays
  /// there until depth falls to shed_low_watermark (hysteresis). While
  /// shedding, an arriving request either displaces a strictly
  /// lower-priority queued request (which is answered kOverloaded, or a
  /// kDegraded fallback if it allows one) or is itself shed the same way.
  /// 0 disables admission control (blocking backpressure, the default).
  Index shed_high_watermark = 0;
  Index shed_low_watermark = 0;

  /// Popularity-prior scores per item id (e.g. training interaction
  /// counts, exactly what models::PopRec ranks by). When non-empty,
  /// requests with allow_degraded that would otherwise fail with
  /// kOverloaded or kModelError are answered with a deterministic TopK
  /// over this prior, tagged kDegraded. Items beyond the vector score 0.
  std::vector<float> fallback_scores;

  /// Deterministic fault injection (tests, benches, chaos drills). When
  /// left default-disabled, the ISREC_FAULT environment spec is used,
  /// so faults can be injected into any binary without a rebuild.
  FaultConfig fault;
};

/// Per-request serving options (the v2 API surface).
struct RequestOptions {
  /// Soft deadline relative to submit time, in milliseconds; 0 = none.
  /// An expired request is ANSWERED kDeadlineExceeded — at dequeue
  /// (before any scoring work) or after a too-slow score — never
  /// silently dropped.
  double deadline_ms = 0.0;
  /// Admission-control priority: under overload, strictly lower-priority
  /// traffic is shed first. Ties shed the newest arrival.
  int priority = 0;
  /// Under overload shedding or model failure, accept a popularity-prior
  /// fallback ranking (status kDegraded) instead of an error, when the
  /// engine was configured with fallback_scores.
  bool allow_degraded = false;
};

struct Request {
  Index user = 0;
  std::vector<Index> history;
  Index k = 10;
  /// Candidate items to rank; empty means the full catalog.
  std::vector<Index> candidates;
  RequestOptions options;
  /// Request id threaded through the serving pipeline for tracing
  /// (DESIGN.md "Admin server & request tracing"): every span the
  /// engine emits for this request carries it, so /tracez can
  /// reconstruct the request's timeline. 0 (the default) lets the
  /// engine assign the next id from its own monotonic sequence.
  uint64_t id = 0;
};

struct Recommendation {
  /// Top-K item ids, best first. Ties broken by ascending item id so
  /// results are deterministic across batch compositions.
  std::vector<Index> items;
  std::vector<float> scores;  // Aligned with items.
  bool from_cache = false;
};

/// The full response-cache key. The cache indexes entries by this key's
/// equality (the FNV hash below only buckets them), so a 64-bit hash
/// collision can never serve one user another user's recommendations.
struct RequestKey {
  Index user = 0;
  Index k = 0;
  std::vector<Index> history;
  std::vector<Index> candidates;

  friend bool operator==(const RequestKey&, const RequestKey&) = default;
};

struct RequestKeyHash {
  size_t operator()(const RequestKey& key) const;
};

/// Deterministic top-k selection: highest score first, ties broken by
/// ascending item id. Shared by the engine and its sequential baselines
/// so "identical top-K" comparisons are exact.
Recommendation TopK(const std::vector<float>& scores,
                    const std::vector<Index>& candidates, Index k);

/// Online inference engine over a trained Recommender.
///
/// Callers from any thread submit requests; workers from an owned
/// utils::ThreadPool pop up to max_batch_size requests from a bounded
/// MPMC queue (waiting batch_window_us to coalesce concurrent traffic)
/// and answer them with ONE scoring call, amortizing the encoder forward
/// pass — the difference between per-request and batched scoring is the
/// main throughput lever. An optional LRU cache short-circuits repeat
/// requests before they reach the queue.
///
/// v2 outcome contract: every submitted request's future resolves with
/// exactly one Outcome<Recommendation> — kOk (scored), kDegraded
/// (popularity fallback under overload/model failure), kDeadlineExceeded,
/// kOverloaded (shed, or engine shut down first), kInvalidArgument, or
/// kModelError. Futures are never left with a broken promise, including
/// through ~ServingEngine: a batch already popped by a worker is still
/// scored ("drained result"), and everything still queued at shutdown is
/// answered kOverloaded. With no deadline, no faults, and admission
/// control off, results are bitwise identical to the v1 engine.
///
/// The model must be in eval mode and its ScoreBatch must be safe for
/// concurrent calls (SequentialModelBase qualifies; see its header).
class ServingEngine {
 public:
  /// `model` must outlive the engine. `num_items` bounds the full-catalog
  /// candidate set used when a request does not supply its own.
  ServingEngine(eval::Recommender& model, Index num_items,
                EngineConfig config = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Blocking request/response. Thread-safe.
  Outcome<Recommendation> Recommend(const Request& request);

  /// Asynchronous variant; the future resolves when a worker has scored
  /// the micro-batch containing this request, or immediately on a cache
  /// hit, an invalid argument, or admission-control shedding.
  std::future<Outcome<Recommendation>> RecommendAsync(Request request);

  /// The engine's fault-injection seam (programmatic equivalent of the
  /// ISREC_FAULT env spec). Install test hooks before traffic flows.
  FaultInjector& fault_injector() { return fault_; }

  /// Snapshot of the recorder plus the instantaneous load signals
  /// (queue_depth, shedding) read under the queue lock.
  ServeStats Stats() const;
  void ResetStats() { stats_.Reset(); }

  const EngineConfig& config() const { return config_; }

 private:
  struct Pending {
    Request request;
    std::promise<Outcome<Recommendation>> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    RequestKey cache_key;  // Filled only when the cache is enabled.
    /// Trace-clock timestamps for the request's timeline spans; 0 when
    /// tracing was off at submit (then no spans are emitted for it).
    uint64_t trace_submit_ns = 0;
    uint64_t trace_dequeue_ns = 0;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);
  Status ValidateRequest(const Request& request) const;
  /// kDegraded fallback if the request allows one and the engine has a
  /// prior, else the given error. `why` names the trigger for messages.
  Outcome<Recommendation> FailOrDegrade(const Request& request, Status error);
  Recommendation FallbackRecommendation(const Request& request) const;
  /// Resolves a pending with `outcome`, recording its status code.
  void Answer(Pending&& pending, Outcome<Recommendation> outcome);

  eval::Recommender& model_;
  const EngineConfig config_;
  std::vector<Index> full_catalog_;
  FaultInjector fault_;
  /// Next auto-assigned Request::id (requests arriving with id 0).
  std::atomic<uint64_t> next_request_id_{1};

  // Bounded MPMC queue. Close() (from the destructor) wakes everything;
  // workers answer remaining queued requests with kOverloaded before
  // exiting (never drop, never a broken promise).
  mutable std::mutex queue_mutex_;  // const Stats() samples depth under it.
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  /// Admission-control hysteresis state (guarded by queue_mutex_).
  bool shedding_ = false;

  std::unique_ptr<LruCache<RequestKey, Recommendation, RequestKeyHash>> cache_;
  StatsRecorder stats_;

  // Last member so workers die before the members they use.
  std::unique_ptr<utils::ThreadPool> pool_;
};

/// Wires `engine` into an obs::AdminServer: a "serve_stats" /varz
/// section (the canonical ServeStatsJson) and a "Serving" /statusz
/// section (outcome table, reservoir percentiles, shed/queue
/// watermarks). One shared registration point, so the tool, the tests,
/// and any future embedder expose identical surfaces. The engine must
/// outlive the admin server — or the server must be Stop()ped first.
void RegisterAdminSections(obs::AdminServer& admin, ServingEngine& engine);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_ENGINE_H_

#ifndef ISREC_SERVE_ENGINE_H_
#define ISREC_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/recommender.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"
#include "utils/thread_pool.h"

namespace isrec::serve {

struct EngineConfig {
  /// Worker threads draining the request queue. Even with one hardware
  /// core, multiple workers overlap queue waiting with scoring; the main
  /// speedup over per-request Score comes from micro-batching.
  Index num_threads = 4;
  /// Largest number of requests scored in one ScoreBatch call.
  Index max_batch_size = 32;
  /// After popping the first request of a batch, a worker waits up to
  /// this long for more requests to coalesce. 0 = score immediately.
  Index batch_window_us = 200;
  /// Bound of the MPMC request queue; Recommend blocks when full
  /// (backpressure instead of unbounded memory growth).
  Index queue_capacity = 4096;
  /// Entries in the (user, history, k, candidates)-keyed LRU response
  /// cache. 0 disables caching.
  Index cache_capacity = 0;
};

struct Request {
  Index user = 0;
  std::vector<Index> history;
  Index k = 10;
  /// Candidate items to rank; empty means the full catalog.
  std::vector<Index> candidates;
};

struct Recommendation {
  /// Top-K item ids, best first. Ties broken by ascending item id so
  /// results are deterministic across batch compositions.
  std::vector<Index> items;
  std::vector<float> scores;  // Aligned with items.
  bool from_cache = false;
};

/// Deterministic top-k selection: highest score first, ties broken by
/// ascending item id. Shared by the engine and its sequential baselines
/// so "identical top-K" comparisons are exact.
Recommendation TopK(const std::vector<float>& scores,
                    const std::vector<Index>& candidates, Index k);

/// Online inference engine over a trained Recommender.
///
/// Callers from any thread submit requests; workers from an owned
/// utils::ThreadPool pop up to max_batch_size requests from a bounded
/// MPMC queue (waiting batch_window_us to coalesce concurrent traffic)
/// and answer them with ONE ScoreBatch call, amortizing the encoder
/// forward pass — the difference between per-request and batched scoring
/// is the main throughput lever. An optional LRU cache short-circuits
/// repeat requests before they reach the queue.
///
/// The model must be in eval mode and its ScoreBatch must be safe for
/// concurrent calls (SequentialModelBase qualifies; see its header).
class ServingEngine {
 public:
  /// `model` must outlive the engine. `num_items` bounds the full-catalog
  /// candidate set used when a request does not supply its own.
  ServingEngine(eval::Recommender& model, Index num_items,
                EngineConfig config = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Blocking request/response. Thread-safe.
  Recommendation Recommend(const Request& request);

  /// Asynchronous variant; the future resolves when a worker has scored
  /// the micro-batch containing this request (or on a cache hit,
  /// immediately).
  std::future<Recommendation> RecommendAsync(Request request);

  ServeStats Stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  const EngineConfig& config() const { return config_; }

 private:
  struct Pending {
    Request request;
    std::promise<Recommendation> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    uint64_t cache_key = 0;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);
  uint64_t CacheKey(const Request& request) const;

  eval::Recommender& model_;
  const EngineConfig config_;
  std::vector<Index> full_catalog_;

  // Bounded MPMC queue. Close() (from the destructor) wakes everything;
  // workers drain remaining requests before exiting.
  std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Pending> queue_;
  bool closed_ = false;

  std::unique_ptr<LruCache<uint64_t, Recommendation>> cache_;
  StatsRecorder stats_;

  // Last member so workers die before the members they use.
  std::unique_ptr<utils::ThreadPool> pool_;
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_ENGINE_H_

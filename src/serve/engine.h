#ifndef ISREC_SERVE_ENGINE_H_
#define ISREC_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/recommender.h"
#include "serve/checkpoint.h"
#include "serve/fault.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"
#include "utils/status.h"
#include "utils/thread_pool.h"

namespace isrec::obs {
class AdminServer;
}  // namespace isrec::obs

namespace isrec::serve {

struct PhaseAllocScope;  // engine.cc: per-phase allocation accounting.

struct EngineConfig {
  /// Worker threads draining the request queue. Even with one hardware
  /// core, multiple workers overlap queue waiting with scoring; the main
  /// speedup over per-request Score comes from micro-batching.
  Index num_threads = 4;
  /// Largest number of requests scored in one ScoreBatch call.
  Index max_batch_size = 32;
  /// After popping the first request of a batch, a worker waits up to
  /// this long for more requests to coalesce. 0 = score immediately.
  Index batch_window_us = 200;
  /// Bound of the MPMC request queue; Recommend blocks when full
  /// (backpressure instead of unbounded memory growth) UNLESS admission
  /// control is on (shed_high_watermark > 0), in which case producers
  /// never block — excess traffic is shed with kOverloaded instead.
  Index queue_capacity = 4096;
  /// Entries in the (model version, user, history, k, candidates)-keyed
  /// LRU response cache. 0 disables caching.
  Index cache_capacity = 0;

  /// Admission control. When shed_high_watermark > 0: once queue depth
  /// reaches the high watermark the engine enters shedding mode and stays
  /// there until depth falls to shed_low_watermark (hysteresis). While
  /// shedding, an arriving request either displaces a strictly
  /// lower-priority queued request (which is answered kOverloaded, or a
  /// kDegraded fallback if it allows one) or is itself shed the same way.
  /// 0 disables admission control (blocking backpressure, the default).
  Index shed_high_watermark = 0;
  Index shed_low_watermark = 0;

  /// Popularity-prior scores per item id (e.g. training interaction
  /// counts, exactly what models::PopRec ranks by). When non-empty,
  /// requests with allow_degraded that would otherwise fail with
  /// kOverloaded or kModelError are answered with a deterministic TopK
  /// over this prior, tagged kDegraded. Items beyond the vector score 0.
  /// A published ServableModel carrying its own popularity prior takes
  /// precedence, so the fallback tracks the live model.
  std::vector<float> fallback_scores;

  /// Deterministic fault injection (tests, benches, chaos drills). When
  /// left default-disabled, the ISREC_FAULT environment spec is used,
  /// so faults can be injected into any binary without a rebuild.
  FaultConfig fault;
};

/// Per-request serving options (the v2 API surface).
struct RequestOptions {
  /// Soft deadline relative to submit time, in milliseconds; 0 = none.
  /// An expired request is ANSWERED kDeadlineExceeded — at dequeue
  /// (before any scoring work) or after a too-slow score — never
  /// silently dropped.
  double deadline_ms = 0.0;
  /// Admission-control priority: under overload, strictly lower-priority
  /// traffic is shed first. Ties shed the newest arrival.
  int priority = 0;
  /// Under overload shedding or model failure, accept a popularity-prior
  /// fallback ranking (status kDegraded) instead of an error, when the
  /// engine was configured with fallback_scores (or the live model
  /// carries a prior).
  bool allow_degraded = false;
};

struct Request {
  Index user = 0;
  std::vector<Index> history;
  Index k = 10;
  /// Candidate items to rank; empty means the full catalog.
  std::vector<Index> candidates;
  RequestOptions options;
  /// Request id threaded through the serving pipeline for tracing
  /// (DESIGN.md "Admin server & request tracing"): every span the
  /// engine emits for this request carries it, so /tracez can
  /// reconstruct the request's timeline. 0 (the default) lets the
  /// engine assign the next id from its own monotonic sequence.
  uint64_t id = 0;
};

struct Recommendation {
  /// Top-K item ids, best first. Ties broken by ascending item id so
  /// results are deterministic across batch compositions.
  std::vector<Index> items;
  std::vector<float> scores;  // Aligned with items.
  bool from_cache = false;
  /// Version of the published model that produced these scores (cache
  /// hits carry the producing version, which may predate the live one).
  /// 0 = not model-produced (degraded popularity fallback).
  uint64_t model_version = 0;
};

/// The full response-cache key. The cache indexes entries by this key's
/// equality (the FNV hash below only buckets them), so a 64-bit hash
/// collision can never serve one user another user's recommendations.
/// model_version keys entries to the model that produced them: after a
/// hot swap, lookups (tagged with the live version) can never return a
/// stale version's scores.
struct RequestKey {
  Index user = 0;
  Index k = 0;
  uint64_t model_version = 0;
  std::vector<Index> history;
  std::vector<Index> candidates;

  friend bool operator==(const RequestKey&, const RequestKey&) = default;
};

struct RequestKeyHash {
  size_t operator()(const RequestKey& key) const;
};

/// Deterministic top-k selection: highest score first, ties broken by
/// ascending item id. Shared by the engine and its sequential baselines
/// so "identical top-K" comparisons are exact.
Recommendation TopK(const std::vector<float>& scores,
                    const std::vector<Index>& candidates, Index k);

/// One published model generation: an immutable, refcounted view the
/// engine swaps atomically (RCU-style) and workers pin per batch. An
/// in-flight batch that pinned version N keeps scoring on N even while
/// version N+1 goes live; the old generation is freed when the last
/// pinned batch releases it.
struct ModelHandle {
  std::shared_ptr<const ServableModel> servable;
  /// Engine-assigned publish sequence number, monotonic from 1.
  uint64_t version = 0;
  /// The full-catalog candidate set (iota over servable->num_items()),
  /// built once per publish so workers share it read-only.
  std::vector<Index> catalog;

  eval::Recommender& scorer() const { return *servable->scorer(); }
  Index num_items() const { return static_cast<Index>(catalog.size()); }
  uint64_t epoch() const { return servable->epoch; }
  const std::vector<float>& popularity() const {
    return servable->popularity;
  }
};

/// Online inference engine over a published ServableModel.
///
/// Callers from any thread submit requests; workers from an owned
/// utils::ThreadPool pop up to max_batch_size requests from a bounded
/// MPMC queue (waiting batch_window_us to coalesce concurrent traffic)
/// and answer them with ONE scoring call, amortizing the encoder forward
/// pass — the difference between per-request and batched scoring is the
/// main throughput lever. An optional LRU cache short-circuits repeat
/// requests before they reach the queue.
///
/// Model lifecycle: the engine serves whatever ModelHandle is live.
/// Publish() validates a candidate model (smoke-scores a probe batch;
/// a kModelError rejection never touches the live handle) and swaps it
/// in atomically. Workers pin the live handle once per batch, so every
/// response is scored entirely by one published version — never a mix —
/// and a swap never stalls traffic. Cache entries are keyed by the
/// version that produced them.
///
/// v2 outcome contract: every submitted request's future resolves with
/// exactly one Outcome<Recommendation> — kOk (scored), kDegraded
/// (popularity fallback under overload/model failure), kDeadlineExceeded,
/// kOverloaded (shed, or engine shut down first), kInvalidArgument, or
/// kModelError. Futures are never left with a broken promise, including
/// through ~ServingEngine: a batch already popped by a worker is still
/// scored ("drained result"), and everything still queued at shutdown is
/// answered kOverloaded. With no deadline, no faults, admission control
/// off, and no Publish, results are bitwise identical to the v1 engine.
///
/// The model's ScoreBatch must be safe for concurrent calls
/// (SequentialModelBase qualifies; see its header).
class ServingEngine {
 public:
  /// Takes shared ownership of `model` (from ServableModel::Load or
  /// ServableModel::Wrap) and publishes it as version 1.
  explicit ServingEngine(std::shared_ptr<ServableModel> model,
                         EngineConfig config = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Blocking request/response. Thread-safe.
  Outcome<Recommendation> Recommend(const Request& request);

  /// Asynchronous variant; the future resolves when a worker has scored
  /// the micro-batch containing this request, or immediately on a cache
  /// hit, an invalid argument, or admission-control shedding.
  std::future<Outcome<Recommendation>> RecommendAsync(Request request);

  /// Validates `model` (null checks, then a smoke-score of a small probe
  /// batch through its scorer) and atomically swaps it in as the next
  /// version. On any validation failure returns kModelError and leaves
  /// the live model untouched — a bad artifact can never take down
  /// serving. In-flight batches finish on the version they pinned; new
  /// batches score on the new one. Thread-safe; returns the new version.
  Outcome<uint64_t> Publish(std::shared_ptr<ServableModel> model);

  /// Pins the live model generation (shared_ptr copy under a lock).
  /// Never null while the engine is alive.
  std::shared_ptr<const ModelHandle> CurrentModel() const;

  /// The engine's fault-injection seam (programmatic equivalent of the
  /// ISREC_FAULT env spec). Install test hooks before traffic flows.
  FaultInjector& fault_injector() { return fault_; }

  /// Snapshot of the recorder plus the instantaneous load signals
  /// (queue_depth, shedding) read under the queue lock and the model
  /// lifecycle signals (model_version, model_epoch, model_swaps).
  ServeStats Stats() const;
  void ResetStats() { stats_.Reset(); }

  const EngineConfig& config() const { return config_; }

 private:
  struct Pending {
    Request request;
    std::promise<Outcome<Recommendation>> promise;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    RequestKey cache_key;  // Filled only when the cache is enabled.
    /// Live model version at submit time; the request was validated
    /// against this generation's catalog. A worker that pins a different
    /// version re-validates before scoring.
    uint64_t submit_version = 0;
    /// Trace-clock timestamps for the request's timeline spans; 0 when
    /// tracing was off at submit (then no spans are emitted for it).
    uint64_t trace_submit_ns = 0;
    uint64_t trace_dequeue_ns = 0;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending> batch);
  Status ValidateRequest(const Request& request, Index num_items) const;
  /// kDegraded fallback if the request allows one and a prior is
  /// available (the handle's popularity, else config fallback_scores),
  /// else the given error. `handle` may be null (engine shutdown: the
  /// drain path never pins a model, so a swap concurrent with shutdown
  /// cannot resurrect an old generation through leftover promises).
  Outcome<Recommendation> FailOrDegrade(const Request& request, Status error,
                                        const ModelHandle* handle);
  Recommendation FallbackRecommendation(const Request& request,
                                        const ModelHandle* handle) const;
  /// Resolves a pending with `outcome`, recording its status code.
  void Answer(Pending&& pending, Outcome<Recommendation> outcome);

  /// Folds one request phase's AllocationCounter totals (heap profiling
  /// on) into the engine aggregates + the serve.alloc.* registry
  /// counters. `phase` indexes kAllocPhaseNames in engine.cc.
  friend struct PhaseAllocScope;
  void RecordPhaseAllocations(int phase, uint64_t count, uint64_t bytes);

  const EngineConfig config_;
  FaultInjector fault_;
  /// Next auto-assigned Request::id (requests arriving with id 0).
  std::atomic<uint64_t> next_request_id_{1};

  /// The live model generation. Guarded by model_mutex_ (pin = one
  /// shared_ptr copy; cheap because workers pin per batch, not per
  /// request). live_version_ and live_num_items_ mirror the handle for
  /// lock-free reads on the submit path.
  mutable std::mutex model_mutex_;
  std::shared_ptr<const ModelHandle> live_;
  std::atomic<uint64_t> live_version_{0};
  std::atomic<Index> live_num_items_{0};
  std::atomic<uint64_t> model_swaps_{0};

  // Bounded MPMC queue. Close() (from the destructor) wakes everything;
  // workers answer remaining queued requests with kOverloaded before
  // exiting (never drop, never a broken promise).
  mutable std::mutex queue_mutex_;  // const Stats() samples depth under it.
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  /// Admission-control hysteresis state (guarded by queue_mutex_).
  bool shedding_ = false;

  std::unique_ptr<LruCache<RequestKey, Recommendation, RequestKeyHash>> cache_;
  StatsRecorder stats_;

  /// Heap-accounting aggregates (only ticked while heap profiling is
  /// enabled): allocations/bytes attributed to the serving pipeline's
  /// request phases, and the number of requests answered while counting
  /// — the allocs/request denominator (ServeStats::allocs_per_request).
  std::atomic<uint64_t> alloc_count_{0};
  std::atomic<uint64_t> alloc_bytes_{0};
  std::atomic<uint64_t> alloc_requests_{0};

  // Last member so workers die before the members they use.
  std::unique_ptr<utils::ThreadPool> pool_;
};

/// Wires `engine` into an obs::AdminServer: a "serve_stats" /varz
/// section (the canonical ServeStatsJson, including model
/// version/epoch/swaps) and a "Serving" /statusz section (outcome table,
/// reservoir percentiles, shed/queue watermarks, model lifecycle). One
/// shared registration point, so the tool, the tests, and any future
/// embedder expose identical surfaces. The engine must outlive the admin
/// server — or the server must be Stop()ped first.
void RegisterAdminSections(obs::AdminServer& admin, ServingEngine& engine);

}  // namespace isrec::serve

#endif  // ISREC_SERVE_ENGINE_H_

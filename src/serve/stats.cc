#include "serve/stats.h"

#include <algorithm>
#include <chrono>

#include "utils/table.h"

namespace isrec::serve {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

void StatsRecorder::RecordRequest(double latency_ms, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (start_seconds_ < 0.0) start_seconds_ = NowSeconds();
  latencies_ms_.push_back(latency_ms);
  if (cache_hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
}

void StatsRecorder::RecordBatch(Index batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_size_histogram_.size() <= static_cast<size_t>(batch_size)) {
    batch_size_histogram_.resize(batch_size + 1, 0);
  }
  ++batch_size_histogram_[batch_size];
  ++num_batches_;
}

void StatsRecorder::RecordProcessedBatch(
    Index batch_size, const std::vector<double>& latencies_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (start_seconds_ < 0.0) start_seconds_ = NowSeconds();
  if (batch_size_histogram_.size() <= static_cast<size_t>(batch_size)) {
    batch_size_histogram_.resize(batch_size + 1, 0);
  }
  ++batch_size_histogram_[batch_size];
  ++num_batches_;
  latencies_ms_.insert(latencies_ms_.end(), latencies_ms.begin(),
                       latencies_ms.end());
  cache_misses_ += latencies_ms.size();
}

void StatsRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_ms_.clear();
  batch_size_histogram_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
  num_batches_ = 0;
  start_seconds_ = NowSeconds();
}

ServeStats StatsRecorder::Snapshot() const {
  ServeStats stats;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    latencies = latencies_ms_;
    stats.batch_size_histogram = batch_size_histogram_;
    stats.cache_hits = cache_hits_;
    stats.cache_misses = cache_misses_;
    stats.num_batches = num_batches_;
    stats.elapsed_seconds =
        start_seconds_ < 0.0 ? 0.0 : NowSeconds() - start_seconds_;
  }
  stats.num_requests = latencies.size();
  if (stats.elapsed_seconds > 0.0) {
    stats.qps = stats.num_requests / stats.elapsed_seconds;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p95_ms = Percentile(latencies, 0.95);
  stats.p99_ms = Percentile(latencies, 0.99);
  uint64_t batched_requests = 0;
  for (size_t b = 0; b < stats.batch_size_histogram.size(); ++b) {
    batched_requests += b * stats.batch_size_histogram[b];
  }
  stats.mean_batch_size =
      stats.num_batches == 0
          ? 0.0
          : static_cast<double>(batched_requests) / stats.num_batches;
  return stats;
}

std::string ServeStats::ToTableString() const {
  Table table({"serve_stat", "value"});
  table.AddRow({"requests", std::to_string(num_requests)});
  table.AddRow({"elapsed_s", FormatFloat(elapsed_seconds, 3)});
  table.AddRow({"qps", FormatFloat(qps, 1)});
  table.AddRow({"p50_ms", FormatFloat(p50_ms, 3)});
  table.AddRow({"p95_ms", FormatFloat(p95_ms, 3)});
  table.AddRow({"p99_ms", FormatFloat(p99_ms, 3)});
  table.AddRow({"batches", std::to_string(num_batches)});
  table.AddRow({"mean_batch_size", FormatFloat(mean_batch_size, 2)});
  table.AddRow({"cache_hits", std::to_string(cache_hits)});
  table.AddRow({"cache_misses", std::to_string(cache_misses)});
  table.AddRow({"cache_hit_rate", FormatFloat(cache_hit_rate(), 3)});
  table.AddSeparator();
  for (size_t b = 1; b < batch_size_histogram.size(); ++b) {
    if (batch_size_histogram[b] == 0) continue;
    table.AddRow({"batch_size=" + std::to_string(b),
                  std::to_string(batch_size_histogram[b])});
  }
  return table.ToString();
}

}  // namespace isrec::serve

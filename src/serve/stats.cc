#include "serve/stats.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "utils/table.h"

namespace isrec::serve {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Shared-registry mirrors (obs::MetricsEnabled() checked by callers).
obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::GetCounter("serve.requests");
  return c;
}
obs::Counter& CacheHitsCounter() {
  static obs::Counter& c = obs::GetCounter("serve.cache_hits");
  return c;
}
obs::Counter& CacheMissesCounter() {
  static obs::Counter& c = obs::GetCounter("serve.cache_misses");
  return c;
}
obs::Counter& BatchesCounter() {
  static obs::Counter& c = obs::GetCounter("serve.batches");
  return c;
}
obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h =
      obs::GetHistogram("serve.latency_ms", obs::LatencyBucketsMs());
  return h;
}
obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h =
      obs::GetHistogram("serve.batch_size", obs::LinearBuckets(1.0, 1.0, 64));
  return h;
}
obs::Counter& OkCounter() {
  static obs::Counter& c = obs::GetCounter("serve.ok");
  return c;
}
obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::GetCounter("serve.rejected");
  return c;
}
obs::Counter& DeadlineExceededCounter() {
  static obs::Counter& c = obs::GetCounter("serve.deadline_exceeded");
  return c;
}
obs::Counter& DegradedCounter() {
  static obs::Counter& c = obs::GetCounter("serve.degraded");
  return c;
}
obs::Counter& InvalidArgumentsCounter() {
  static obs::Counter& c = obs::GetCounter("serve.invalid_arguments");
  return c;
}
obs::Counter& ModelErrorsCounter() {
  static obs::Counter& c = obs::GetCounter("serve.model_errors");
  return c;
}

}  // namespace

void StatsRecorder::RecordLatencyLocked(double latency_ms) {
  if (start_seconds_ < 0.0) start_seconds_ = NowSeconds();
  ++num_latencies_;
  // Vitter's algorithm R: once the reservoir is full, the i-th sample
  // (1-based) replaces a uniformly drawn slot with probability cap/i, so
  // every sample seen so far is retained with equal probability.
  if (latency_reservoir_.size() < kReservoirCapacity) {
    latency_reservoir_.push_back(latency_ms);
    return;
  }
  const uint64_t slot = SplitMix64(&reservoir_rng_) % num_latencies_;
  if (slot < kReservoirCapacity) {
    latency_reservoir_[static_cast<size_t>(slot)] = latency_ms;
  }
}

void StatsRecorder::RecordRequest(double latency_ms, bool cache_hit) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RecordLatencyLocked(latency_ms);
    if (cache_hit) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
  }
  if (obs::MetricsEnabled()) {
    RequestsCounter().Add(1);
    (cache_hit ? CacheHitsCounter() : CacheMissesCounter()).Add(1);
    LatencyHistogram().Observe(latency_ms);
  }
}

void StatsRecorder::RecordBatch(Index batch_size) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (batch_size_histogram_.size() <= static_cast<size_t>(batch_size)) {
      batch_size_histogram_.resize(batch_size + 1, 0);
    }
    ++batch_size_histogram_[batch_size];
    ++num_batches_;
  }
  if (obs::MetricsEnabled()) {
    BatchesCounter().Add(1);
    BatchSizeHistogram().Observe(static_cast<double>(batch_size));
  }
}

void StatsRecorder::RecordProcessedBatch(
    Index batch_size, const std::vector<double>& latencies_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (batch_size_histogram_.size() <= static_cast<size_t>(batch_size)) {
      batch_size_histogram_.resize(batch_size + 1, 0);
    }
    ++batch_size_histogram_[batch_size];
    ++num_batches_;
    for (const double latency_ms : latencies_ms) {
      RecordLatencyLocked(latency_ms);
    }
    cache_misses_ += latencies_ms.size();
  }
  if (obs::MetricsEnabled()) {
    BatchesCounter().Add(1);
    BatchSizeHistogram().Observe(static_cast<double>(batch_size));
    RequestsCounter().Add(latencies_ms.size());
    CacheMissesCounter().Add(latencies_ms.size());
    for (const double latency_ms : latencies_ms) {
      LatencyHistogram().Observe(latency_ms);
    }
  }
}

void StatsRecorder::RecordOutcome(StatusCode code) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (code) {
      case StatusCode::kOk:
        ++ok_;
        break;
      case StatusCode::kOverloaded:
        ++rejected_;
        break;
      case StatusCode::kDeadlineExceeded:
        ++deadline_exceeded_;
        break;
      case StatusCode::kDegraded:
        ++degraded_;
        break;
      case StatusCode::kInvalidArgument:
        ++invalid_arguments_;
        break;
      case StatusCode::kModelError:
        ++model_errors_;
        break;
    }
  }
  if (obs::MetricsEnabled()) {
    switch (code) {
      case StatusCode::kOk:
        OkCounter().Add(1);
        break;
      case StatusCode::kOverloaded:
        RejectedCounter().Add(1);
        break;
      case StatusCode::kDeadlineExceeded:
        DeadlineExceededCounter().Add(1);
        break;
      case StatusCode::kDegraded:
        DegradedCounter().Add(1);
        break;
      case StatusCode::kInvalidArgument:
        InvalidArgumentsCounter().Add(1);
        break;
      case StatusCode::kModelError:
        ModelErrorsCounter().Add(1);
        break;
    }
  }
}

void StatsRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_reservoir_.clear();
  num_latencies_ = 0;
  reservoir_rng_ = 0x9e3779b97f4a7c15ull;
  batch_size_histogram_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
  num_batches_ = 0;
  ok_ = 0;
  rejected_ = 0;
  deadline_exceeded_ = 0;
  degraded_ = 0;
  invalid_arguments_ = 0;
  model_errors_ = 0;
  // Lazy re-arm: the window restarts at the next recorded event, not at
  // Reset() time, so a long idle gap before the next burst does not
  // deflate qps (see header contract; pinned by serve_test).
  start_seconds_ = -1.0;
}

ServeStats StatsRecorder::Snapshot() const {
  ServeStats stats;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    latencies = latency_reservoir_;
    stats.num_requests = num_latencies_;
    stats.batch_size_histogram = batch_size_histogram_;
    stats.cache_hits = cache_hits_;
    stats.cache_misses = cache_misses_;
    stats.num_batches = num_batches_;
    stats.ok = ok_;
    stats.rejected = rejected_;
    stats.deadline_exceeded = deadline_exceeded_;
    stats.degraded = degraded_;
    stats.invalid_arguments = invalid_arguments_;
    stats.model_errors = model_errors_;
    stats.elapsed_seconds =
        start_seconds_ < 0.0 ? 0.0 : NowSeconds() - start_seconds_;
  }
  if (stats.elapsed_seconds > 0.0) {
    stats.qps = stats.num_requests / stats.elapsed_seconds;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p95_ms = Percentile(latencies, 0.95);
  stats.p99_ms = Percentile(latencies, 0.99);
  uint64_t batched_requests = 0;
  for (size_t b = 0; b < stats.batch_size_histogram.size(); ++b) {
    batched_requests += b * stats.batch_size_histogram[b];
  }
  stats.mean_batch_size =
      stats.num_batches == 0
          ? 0.0
          : static_cast<double>(batched_requests) / stats.num_batches;
  return stats;
}

std::string ServeStats::ToTableString() const {
  Table table({"serve_stat", "value"});
  table.AddRow({"requests", std::to_string(num_requests)});
  table.AddRow({"elapsed_s", FormatFloat(elapsed_seconds, 3)});
  table.AddRow({"qps", FormatFloat(qps, 1)});
  table.AddRow({"p50_ms", FormatFloat(p50_ms, 3)});
  table.AddRow({"p95_ms", FormatFloat(p95_ms, 3)});
  table.AddRow({"p99_ms", FormatFloat(p99_ms, 3)});
  table.AddRow({"batches", std::to_string(num_batches)});
  table.AddRow({"mean_batch_size", FormatFloat(mean_batch_size, 2)});
  table.AddRow({"cache_hits", std::to_string(cache_hits)});
  table.AddRow({"cache_misses", std::to_string(cache_misses)});
  table.AddRow({"cache_hit_rate", FormatFloat(cache_hit_rate(), 3)});
  table.AddRow({"ok", std::to_string(ok)});
  table.AddRow({"rejected", std::to_string(rejected)});
  table.AddRow({"deadline_exceeded", std::to_string(deadline_exceeded)});
  table.AddRow({"degraded", std::to_string(degraded)});
  table.AddRow({"invalid_arguments", std::to_string(invalid_arguments)});
  table.AddRow({"model_errors", std::to_string(model_errors)});
  table.AddRow({"queue_depth", std::to_string(queue_depth)});
  table.AddRow({"shedding", shedding ? "true" : "false"});
  table.AddRow({"model_version", std::to_string(model_version)});
  table.AddRow({"model_epoch", std::to_string(model_epoch)});
  table.AddRow({"model_swaps", std::to_string(model_swaps)});
  if (alloc_requests > 0) {
    table.AddRow({"alloc_count", std::to_string(alloc_count)});
    table.AddRow({"alloc_bytes", std::to_string(alloc_bytes)});
    table.AddRow({"alloc_requests", std::to_string(alloc_requests)});
    table.AddRow({"allocs_per_request", FormatFloat(allocs_per_request(), 2)});
  }
  table.AddSeparator();
  for (size_t b = 1; b < batch_size_histogram.size(); ++b) {
    if (batch_size_histogram[b] == 0) continue;
    table.AddRow({"batch_size=" + std::to_string(b),
                  std::to_string(batch_size_histogram[b])});
  }
  return table.ToString();
}

std::string ServeStatsJson(const ServeStats& stats) {
  char buffer[64];
  auto num = [&buffer](double v) {
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return std::string(buffer);
  };
  std::string out = "{";
  // Load signals first: the router's poller scrapes these two from the
  // front of the object (satellite contract, pinned by admin_server_test).
  out += "\"queue_depth\": " + std::to_string(stats.queue_depth);
  out += ", \"shedding\": " + std::string(stats.shedding ? "true" : "false");
  // Model lifecycle next, still in the poller-friendly cheap prefix:
  // the prober reads model_version for the fleet version-skew table.
  out += ", \"model_version\": " + std::to_string(stats.model_version);
  out += ", \"model_epoch\": " + std::to_string(stats.model_epoch);
  out += ", \"model_swaps\": " + std::to_string(stats.model_swaps);
  out += ", \"requests\": " + std::to_string(stats.num_requests);
  out += ", \"elapsed_s\": " + num(stats.elapsed_seconds);
  out += ", \"qps\": " + num(stats.qps);
  out += ", \"p50_ms\": " + num(stats.p50_ms);
  out += ", \"p95_ms\": " + num(stats.p95_ms);
  out += ", \"p99_ms\": " + num(stats.p99_ms);
  out += ", \"batches\": " + std::to_string(stats.num_batches);
  out += ", \"mean_batch_size\": " + num(stats.mean_batch_size);
  out += ", \"cache_hits\": " + std::to_string(stats.cache_hits);
  out += ", \"cache_misses\": " + std::to_string(stats.cache_misses);
  out += ", \"cache_hit_rate\": " + num(stats.cache_hit_rate());
  out += ", \"ok\": " + std::to_string(stats.ok);
  out += ", \"rejected\": " + std::to_string(stats.rejected);
  out += ", \"deadline_exceeded\": " + std::to_string(stats.deadline_exceeded);
  out += ", \"degraded\": " + std::to_string(stats.degraded);
  out += ", \"invalid_arguments\": " + std::to_string(stats.invalid_arguments);
  out += ", \"model_errors\": " + std::to_string(stats.model_errors);
  // Heap-accounting baseline (all zero with heap profiling off).
  // Appended AFTER the established fields so the poller prefix contract
  // above is untouched; the router's prober reads allocs_per_request.
  out += ", \"alloc_count\": " + std::to_string(stats.alloc_count);
  out += ", \"alloc_bytes\": " + std::to_string(stats.alloc_bytes);
  out += ", \"alloc_requests\": " + std::to_string(stats.alloc_requests);
  out += ", \"allocs_per_request\": " + num(stats.allocs_per_request());
  out += ", \"alloc_bytes_per_request\": " +
         num(stats.alloc_bytes_per_request());
  out += ", \"batch_size_histogram\": [";
  for (size_t b = 0; b < stats.batch_size_histogram.size(); ++b) {
    if (b > 0) out += ", ";
    out += std::to_string(stats.batch_size_histogram[b]);
  }
  out += "]}";
  return out;
}

std::string OutcomesLine(const ServeStats& stats) {
  // Every StatusCode in declaration order, named by StatusCodeName.
  std::string out = "outcomes:";
  out += " OK=" + std::to_string(stats.ok);
  out += " DEADLINE_EXCEEDED=" + std::to_string(stats.deadline_exceeded);
  out += " OVERLOADED=" + std::to_string(stats.rejected);
  out += " INVALID_ARGUMENT=" + std::to_string(stats.invalid_arguments);
  out += " MODEL_ERROR=" + std::to_string(stats.model_errors);
  out += " DEGRADED=" + std::to_string(stats.degraded);
  return out;
}

}  // namespace isrec::serve

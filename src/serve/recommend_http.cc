#include "serve/recommend_http.h"

#include <cstdio>

#include "obs/admin_server.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "utils/json.h"

namespace isrec::serve {
namespace {

std::string IndexArrayJson(const std::vector<Index>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

std::string FloatArrayJson(const std::vector<float>& values) {
  char buffer[48];
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    // %.9g round-trips every float32 exactly, so the router relays the
    // replica's scores bit-for-bit.
    std::snprintf(buffer, sizeof(buffer), "%.9g",
                  static_cast<double>(values[i]));
    out += buffer;
  }
  out += "]";
  return out;
}

/// Reads an optional numeric field into `out`; false only when the
/// field exists with a non-numeric type.
bool ReadNumber(const json::JsonValue& object, const std::string& key,
                double* out, std::string* error) {
  const json::JsonValue* value = object.Find(key);
  if (value == nullptr) return true;
  if (value->kind != json::JsonValue::kNumber) {
    *error = "field '" + key + "' must be a number";
    return false;
  }
  *out = value->number;
  return true;
}

bool ReadIndexArray(const json::JsonValue& object, const std::string& key,
                    std::vector<Index>* out, std::string* error) {
  const json::JsonValue* value = object.Find(key);
  if (value == nullptr) return true;
  if (value->kind != json::JsonValue::kArray) {
    *error = "field '" + key + "' must be an array";
    return false;
  }
  out->clear();
  out->reserve(value->array.size());
  for (const json::JsonValue& element : value->array) {
    if (element.kind != json::JsonValue::kNumber) {
      *error = "field '" + key + "' must contain only numbers";
      return false;
    }
    out->push_back(static_cast<Index>(element.number));
  }
  return true;
}

}  // namespace

RecommendResponse RecommendResponse::FromOutcome(
    const Outcome<Recommendation>& outcome) {
  RecommendResponse response;
  response.status = outcome.status();
  if (outcome.has_value()) {
    response.recommendation = outcome.value();
    response.has_value = true;
  }
  return response;
}

std::string RecommendRequestToJson(const Request& request) {
  std::string out = "{";
  out += "\"user\": " + std::to_string(request.user);
  out += ", \"history\": " + IndexArrayJson(request.history);
  out += ", \"k\": " + std::to_string(request.k);
  if (!request.candidates.empty()) {
    out += ", \"candidates\": " + IndexArrayJson(request.candidates);
  }
  if (request.options.deadline_ms > 0.0) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6g", request.options.deadline_ms);
    out += ", \"deadline_ms\": " + std::string(buffer);
  }
  if (request.options.priority != 0) {
    out += ", \"priority\": " + std::to_string(request.options.priority);
  }
  if (request.options.allow_degraded) {
    out += ", \"allow_degraded\": true";
  }
  if (request.id != 0) {
    out += ", \"id\": " + std::to_string(request.id);
  }
  out += "}";
  return out;
}

bool RecommendRequestFromJson(const std::string& body, Request* request,
                              std::string* error) {
  json::JsonValue root;
  if (!json::JsonParser(body).Parse(&root) ||
      root.kind != json::JsonValue::kObject) {
    *error = "malformed JSON request body";
    return false;
  }
  const json::JsonValue* user = root.Find("user");
  if (user == nullptr || user->kind != json::JsonValue::kNumber) {
    *error = "required numeric field 'user' missing";
    return false;
  }
  *request = Request{};
  request->user = static_cast<Index>(user->number);
  if (!ReadIndexArray(root, "history", &request->history, error)) return false;
  double k = static_cast<double>(request->k);
  if (!ReadNumber(root, "k", &k, error)) return false;
  request->k = static_cast<Index>(k);
  if (!ReadIndexArray(root, "candidates", &request->candidates, error)) {
    return false;
  }
  if (!ReadNumber(root, "deadline_ms", &request->options.deadline_ms, error)) {
    return false;
  }
  double priority = 0.0;
  if (!ReadNumber(root, "priority", &priority, error)) return false;
  request->options.priority = static_cast<int>(priority);
  if (const json::JsonValue* degraded = root.Find("allow_degraded")) {
    if (degraded->kind != json::JsonValue::kBool) {
      *error = "field 'allow_degraded' must be a bool";
      return false;
    }
    request->options.allow_degraded = degraded->boolean;
  }
  double id = 0.0;
  if (!ReadNumber(root, "id", &id, error)) return false;
  request->id = static_cast<uint64_t>(id);
  return true;
}

std::string RecommendResponseToJson(const RecommendResponse& response) {
  std::string out = "{";
  out += "\"status\": " +
         json::Escape(std::string(StatusCodeName(response.status.code())));
  out += ", \"message\": " + json::Escape(response.status.message());
  if (response.has_value) {
    out += ", \"items\": " + IndexArrayJson(response.recommendation.items);
    out += ", \"scores\": " + FloatArrayJson(response.recommendation.scores);
    out += ", \"from_cache\": " +
           std::string(response.recommendation.from_cache ? "true" : "false");
    out += ", \"model_version\": " +
           std::to_string(response.recommendation.model_version);
  }
  if (response.trace.present) {
    out += ", \"trace\": {\"clock_ns\": " +
           std::to_string(response.trace.clock_ns) + ", \"spans\": [";
    for (size_t i = 0; i < response.trace.spans.size(); ++i) {
      const TraceEchoSpan& span = response.trace.spans[i];
      if (i > 0) out += ",";
      out += "{\"name\": " + json::Escape(span.name) +
             ", \"start_ns\": " + std::to_string(span.start_ns) +
             ", \"dur_ns\": " + std::to_string(span.dur_ns) +
             ", \"tid\": " + std::to_string(span.tid) + "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

bool RecommendResponseFromJson(const std::string& body,
                               RecommendResponse* response,
                               std::string* error) {
  json::JsonValue root;
  if (!json::JsonParser(body).Parse(&root) ||
      root.kind != json::JsonValue::kObject) {
    *error = "malformed JSON response body";
    return false;
  }
  const json::JsonValue* status = root.Find("status");
  if (status == nullptr || status->kind != json::JsonValue::kString) {
    *error = "required string field 'status' missing";
    return false;
  }
  StatusCode code;
  if (!StatusCodeFromName(status->str, &code)) {
    *error = "unknown status '" + status->str + "'";
    return false;
  }
  *response = RecommendResponse{};
  std::string message;
  if (const json::JsonValue* m = root.Find("message")) message = m->str;
  response->status = Status(code, std::move(message));
  if (const json::JsonValue* items = root.Find("items")) {
    if (!ReadIndexArray(root, "items", &response->recommendation.items,
                        error)) {
      return false;
    }
    response->has_value = true;
    if (const json::JsonValue* scores = root.Find("scores")) {
      if (scores->kind != json::JsonValue::kArray) {
        *error = "field 'scores' must be an array";
        return false;
      }
      response->recommendation.scores.reserve(scores->array.size());
      for (const json::JsonValue& s : scores->array) {
        response->recommendation.scores.push_back(
            static_cast<float>(s.number));
      }
    }
    if (const json::JsonValue* cached = root.Find("from_cache")) {
      response->recommendation.from_cache = cached->boolean;
    }
    double model_version = 0.0;
    if (!ReadNumber(root, "model_version", &model_version, error)) {
      return false;
    }
    response->recommendation.model_version =
        static_cast<uint64_t>(model_version);
    (void)items;
  }
  if (const json::JsonValue* trace = root.Find("trace")) {
    if (trace->kind != json::JsonValue::kObject) {
      *error = "field 'trace' must be an object";
      return false;
    }
    response->trace.present = true;
    double clock_ns = 0.0;
    if (!ReadNumber(*trace, "clock_ns", &clock_ns, error)) return false;
    response->trace.clock_ns = static_cast<uint64_t>(clock_ns);
    if (const json::JsonValue* spans = trace->Find("spans")) {
      if (spans->kind != json::JsonValue::kArray) {
        *error = "field 'trace.spans' must be an array";
        return false;
      }
      response->trace.spans.reserve(spans->array.size());
      for (const json::JsonValue& element : spans->array) {
        if (element.kind != json::JsonValue::kObject) {
          *error = "field 'trace.spans' must contain only objects";
          return false;
        }
        TraceEchoSpan span;
        if (const json::JsonValue* name = element.Find("name")) {
          span.name = name->str;
        }
        double start_ns = 0.0, dur_ns = 0.0, tid = 0.0;
        if (!ReadNumber(element, "start_ns", &start_ns, error) ||
            !ReadNumber(element, "dur_ns", &dur_ns, error) ||
            !ReadNumber(element, "tid", &tid, error)) {
          return false;
        }
        span.start_ns = static_cast<uint64_t>(start_ns);
        span.dur_ns = static_cast<uint64_t>(dur_ns);
        span.tid = static_cast<uint32_t>(tid);
        response->trace.spans.push_back(std::move(span));
      }
    }
  }
  return true;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kDegraded:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kModelError:
      return 500;
    case StatusCode::kOverloaded:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

bool StatusCodeFromName(const std::string& name, StatusCode* code) {
  for (StatusCode candidate :
       {StatusCode::kOk, StatusCode::kDeadlineExceeded, StatusCode::kOverloaded,
        StatusCode::kInvalidArgument, StatusCode::kModelError,
        StatusCode::kDegraded}) {
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

void RegisterRecommendEndpoint(obs::AdminServer& admin,
                               ServingEngine& engine) {
  admin.AddHandler("/recommend", [&engine](const obs::HttpRequest& http) {
    obs::HttpResponse out;
    out.content_type = "application/json";
    if (http.method != "POST") {
      out.status = 405;
      out.body = "{\"status\": \"INVALID_ARGUMENT\", "
                 "\"message\": \"POST a JSON request body\"}";
      return out;
    }
    Request request;
    std::string error;
    if (!RecommendRequestFromJson(http.body, &request, &error)) {
      out.status = 400;
      out.body = RecommendResponseToJson(RecommendResponse::FromOutcome(
          Outcome<Recommendation>(Status::InvalidArgument(error))));
      return out;
    }
    // Adopt the peer's trace context (if any): the cross-process trace
    // id becomes the engine request id, so the replica's serve.req.*
    // spans land in the timeline the router will ask us to echo back.
    // No header → `context` is inactive and this request runs exactly
    // the pre-tracing path (no ids rewritten, no spans, no "trace" key).
    const obs::TraceContext context = obs::TraceContextFromHeaders(http);
    const bool traced = context.active() && obs::TracingEnabled();
    if (traced) request.id = context.trace_id;
    const uint64_t handler_start_ns = traced ? obs::TraceClockNs() : 0;
    const Outcome<Recommendation> outcome = engine.Recommend(request);
    RecommendResponse response = RecommendResponse::FromOutcome(outcome);
    if (traced) {
      // The handler span bounds the whole replica-side stay. Recorded
      // BEFORE the echo is assembled so the echo always carries at
      // least this span (serve.req.respond is recorded by the engine
      // worker after the promise resolves and can race the snapshot).
      const uint64_t handler_end_ns = obs::TraceClockNs();
      obs::RecordRequestSpan("serve.req.http", handler_start_ns,
                             handler_end_ns, context.trace_id);
      if (context.echo && obs::RequestTracingEnabled()) {
        response.trace.present = true;
        response.trace.clock_ns = obs::TraceClockNs();
        obs::RequestTimeline timeline;
        if (obs::FindRequestTimeline(context.trace_id, &timeline)) {
          for (const obs::RequestSpan& span : timeline.spans) {
            // Echo only this process's serve-side spans: an in-process
            // embedder (tests, benches) shares the obs registry with
            // the router, and router.req.* spans must not round-trip.
            const std::string name = span.name;
            if (name.rfind("serve.", 0) != 0) continue;
            response.trace.spans.push_back(
                {name, span.start_ns, span.dur_ns, span.tid});
          }
        }
        if (response.trace.spans.empty()) {
          // The timeline index hashes ids into 128 slots and keeps the
          // numerically larger id on collision — with random trace ids
          // a request can lose its slot entirely. The handler bounded
          // the replica-side stay itself, so the echo still places
          // this process on the stitched timeline; only the engine's
          // pipeline breakdown is lost (counted by the index in
          // obs.trace.request_dropped).
          response.trace.spans.push_back(
              {"serve.req.http", handler_start_ns,
               handler_end_ns >= handler_start_ns
                   ? handler_end_ns - handler_start_ns
                   : 0,
               0});
        }
      }
    }
    out.status = HttpStatusForCode(outcome.code());
    out.body = RecommendResponseToJson(response);
    return out;
  });
}

}  // namespace isrec::serve

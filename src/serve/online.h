#ifndef ISREC_SERVE_ONLINE_H_
#define ISREC_SERVE_ONLINE_H_

// Online learning loop (DESIGN.md §13): a background OnlineTrainer tails
// an interaction event stream, folds fresh events into its private
// training dataset, runs incremental TrainEpoch passes, writes a
// versioned checkpoint, and publishes it into a live ServingEngine via
// the same load-validate-swap path the /admin/reload endpoint uses. The
// served model is NEVER trained in place — every published generation is
// a fresh immutable ServableModel restored from its own artifact, so a
// bad training step can be rejected (and rolled back by re-publishing an
// older checkpoint) without touching live traffic.

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/isrec.h"
#include "data/dataset.h"
#include "data/stream.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "utils/status.h"

namespace isrec::obs {
class AdminServer;
}  // namespace isrec::obs

namespace isrec::serve {

/// Loads the checkpoint at `path` (ServableModel::Load with `options`)
/// and publishes it into `engine`. The one shared reload path: the
/// /admin/reload endpoint, the OnlineTrainer, and the CLI all swap
/// models through this, so validation (typed load errors + the engine's
/// probe smoke-score) cannot be bypassed. Returns the new live version.
Outcome<uint64_t> PublishFromCheckpoint(ServingEngine& engine,
                                        const std::string& path,
                                        const LoadOptions& options = {});

/// Registers `POST /admin/reload?checkpoint=PATH` on `admin`: loads,
/// validates, and atomically swaps the checkpoint into `engine`,
/// answering {"status": "OK", "model_version": N} on success or a JSON
/// error (HTTP 400/422) without touching the live model on failure.
/// `options` (e.g. int8 quantization) apply to every reload, so a
/// quantized replica stays quantized across swaps. The engine must
/// outlive the admin server (same rule as RegisterAdminSections).
void RegisterReloadEndpoint(obs::AdminServer& admin, ServingEngine& engine,
                            LoadOptions options = {});

struct OnlineTrainerConfig {
  /// Event stream log to tail (data::EventStreamTailer wire format).
  std::string stream_path;
  /// Versioned artifacts are written to "<checkpoint_base>.v<epoch>".
  std::string checkpoint_base;
  /// Seconds between refresh attempts in the background loop.
  double period_s = 5.0;
  /// A refresh is skipped (no train, no publish) until at least this
  /// many new in-vocabulary events have accumulated.
  Index min_new_events = 1;
  /// Incremental TrainEpoch passes per refresh.
  Index epochs_per_refresh = 1;
  /// Cumulative epochs already behind the starting model (from its
  /// checkpoint header), so published artifacts carry the true total.
  uint64_t initial_epoch = 0;
  /// Applied when loading the published artifact back for serving.
  LoadOptions load;
};

struct OnlineTrainerStats {
  uint64_t polls = 0;
  uint64_t events_ingested = 0;  // Parsed off the stream.
  uint64_t events_applied = 0;   // In-vocabulary, folded into the dataset.
  uint64_t refreshes = 0;        // Completed train->checkpoint->publish.
  uint64_t skipped = 0;          // Refresh attempts below min_new_events.
  uint64_t failures = 0;         // Poll/publish errors (see last_error).
  uint64_t epoch = 0;            // Cumulative epochs on the online model.
  double last_loss = 0.0;
  uint64_t last_published_version = 0;
  std::string last_checkpoint;
  std::string last_error;
};

/// Background incremental trainer. Owns a private model + dataset pair
/// (the model must be bound to exactly this dataset — Fit or
/// Build+LoadParameters against it) and a tailer on the event stream.
/// Start() runs RefreshOnce() every period_s on a background thread;
/// tests and the CLI can call RefreshOnce() directly for a synchronous,
/// deterministic cycle.
class OnlineTrainer {
 public:
  /// `model` must be bound to `*dataset` (its dataset() pointer aims at
  /// it). `engine` (not owned, may be null for train-only use) receives
  /// each published checkpoint; it must outlive the trainer.
  OnlineTrainer(std::unique_ptr<core::IsrecModel> model,
                std::unique_ptr<data::Dataset> dataset,
                OnlineTrainerConfig config, ServingEngine* engine);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Starts the background refresh loop. Idempotent.
  void Start();
  /// Stops and joins the loop (waits out any in-flight refresh).
  /// Idempotent; the destructor calls it.
  void Stop();

  /// One synchronous ingest->train->checkpoint->publish cycle: tail the
  /// stream, fold new events in, and — when min_new_events have
  /// arrived — run epochs_per_refresh TrainEpoch passes, save
  /// "<checkpoint_base>.v<epoch>", and publish it into the engine.
  /// Returns Ok both on a completed refresh and on a clean skip
  /// (too few events); errors leave the live model untouched.
  Status RefreshOnce();

  OnlineTrainerStats Stats() const;

 private:
  void Loop();

  const OnlineTrainerConfig config_;
  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<core::IsrecModel> model_;
  ServingEngine* engine_;  // Not owned.
  data::EventStreamTailer tailer_;
  Index pending_events_ = 0;  // Applied but not yet trained on.
  /// Last successful stream poll (construction time before the first) —
  /// the serve.online.last_poll_age_ms gauge measures from here.
  std::chrono::steady_clock::time_point last_poll_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mutex_;  // Guards stats_ (the loop owns the rest).
  OnlineTrainerStats stats_;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
  std::thread loop_;
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_ONLINE_H_

#include "serve/online.h"

#include <chrono>
#include <utility>
#include <vector>

#include "data/batch.h"
#include "data/split.h"
#include "obs/admin_server.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/json.h"
#include "utils/logging.h"

namespace isrec::serve {
namespace {

void CountOnline(const char* metric) {
  if (obs::MetricsEnabled()) obs::GetCounter(metric).Add(1);
}

// Freshness gauges (DESIGN.md "Profiling plane" satellite): how far the
// online trainer lags its stream. Exported to /varz and /metrics like
// every other registry gauge.
void SetOnlineGauge(const char* metric, double value) {
  if (obs::MetricsEnabled()) obs::GetGauge(metric).Set(value);
}

obs::HttpResponse JsonError(int status, const std::string& message) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  response.body = "{\"status\": \"ERROR\", \"error\": " +
                  json::Escape(message) + "}\n";
  return response;
}

}  // namespace

Outcome<uint64_t> PublishFromCheckpoint(ServingEngine& engine,
                                        const std::string& path,
                                        const LoadOptions& options) {
  Outcome<std::shared_ptr<ServableModel>> loaded =
      ServableModel::Load(path, options);
  if (!loaded.ok()) {
    return Outcome<uint64_t>(loaded.status());
  }
  return engine.Publish(std::move(loaded.value()));
}

void RegisterReloadEndpoint(obs::AdminServer& admin, ServingEngine& engine,
                            LoadOptions options) {
  admin.AddHandler(
      "/admin/reload", [&engine, options](const obs::HttpRequest& request) {
        const std::string checkpoint = request.QueryOr("checkpoint", "");
        if (checkpoint.empty()) {
          return JsonError(400, "missing query parameter 'checkpoint'");
        }
        const Outcome<uint64_t> published =
            PublishFromCheckpoint(engine, checkpoint, options);
        if (!published.ok()) {
          // 422: the request was well-formed but the artifact failed
          // validation — the live model is untouched.
          return JsonError(422, published.status().ToString());
        }
        obs::HttpResponse response;
        response.content_type = "application/json; charset=utf-8";
        response.body =
            "{\"status\": \"OK\", \"model_version\": " +
            std::to_string(published.value()) +
            ", \"checkpoint\": " + json::Escape(checkpoint) + "}\n";
        return response;
      });
}

OnlineTrainer::OnlineTrainer(std::unique_ptr<core::IsrecModel> model,
                             std::unique_ptr<data::Dataset> dataset,
                             OnlineTrainerConfig config, ServingEngine* engine)
    : config_(std::move(config)),
      dataset_(std::move(dataset)),
      model_(std::move(model)),
      engine_(engine),
      tailer_(config_.stream_path) {
  ISREC_CHECK(model_ != nullptr);
  ISREC_CHECK(dataset_ != nullptr);
  ISREC_CHECK_MSG(model_->dataset() == dataset_.get(),
                  "OnlineTrainer model must be bound to the given dataset");
  ISREC_CHECK_GT(config_.epochs_per_refresh, 0);
  ISREC_CHECK(!config_.checkpoint_base.empty());
  stats_.epoch = config_.initial_epoch;
}

OnlineTrainer::~OnlineTrainer() { Stop(); }

void OnlineTrainer::Start() {
  std::lock_guard<std::mutex> lock(loop_mutex_);
  if (loop_.joinable()) return;
  stop_ = false;
  loop_ = std::thread([this] { Loop(); });
}

void OnlineTrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    if (!loop_.joinable()) return;
    stop_ = true;
  }
  loop_cv_.notify_all();
  loop_.join();
}

void OnlineTrainer::Loop() {
  const auto period = std::chrono::duration<double>(config_.period_s);
  std::unique_lock<std::mutex> lock(loop_mutex_);
  while (!stop_) {
    if (loop_cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    const Status status = RefreshOnce();
    if (!status.ok()) {
      ISREC_LOG(Warning) << "online refresh failed: " << status.ToString();
    }
    lock.lock();
  }
}

Status OnlineTrainer::RefreshOnce() {
  // 1. Ingest: tail the stream and fold new events into the dataset.
  Outcome<std::vector<data::Interaction>> polled = tailer_.Poll();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.polls;
  }
  // Freshness gauges, updated every cycle whether or not the poll
  // succeeded: a stuck stream shows up as a growing last_poll_age_ms,
  // not a silently frozen dashboard.
  const auto poll_now = std::chrono::steady_clock::now();
  if (polled.ok()) last_poll_ = poll_now;
  SetOnlineGauge(
      "serve.online.last_poll_age_ms",
      std::chrono::duration<double, std::milli>(poll_now - last_poll_)
          .count());
  SetOnlineGauge("serve.online.malformed_lines",
                 static_cast<double>(tailer_.malformed_lines()));
  if (!polled.ok()) {
    SetOnlineGauge("serve.online.events_behind",
                   static_cast<double>(pending_events_));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    stats_.last_error = polled.status().ToString();
    return polled.status();
  }
  const std::vector<data::Interaction>& events = polled.value();
  const Index applied = data::ApplyEvents(events, dataset_.get());
  pending_events_ += applied;
  SetOnlineGauge("serve.online.events_behind",
                 static_cast<double>(pending_events_));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.events_ingested += events.size();
    stats_.events_applied += static_cast<uint64_t>(applied);
  }
  if (pending_events_ < config_.min_new_events) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.skipped;
    return Status::Ok();
  }
  pending_events_ = 0;
  SetOnlineGauge("serve.online.events_behind", 0.0);

  // 2. Incremental training on the grown dataset. The split/batcher are
  // rebuilt so the fresh tail lands in the training prefixes.
  ISREC_TRACE_SPAN("serve.online_refresh");
  const data::LeaveOneOutSplit split(*dataset_);
  const models::SeqModelConfig& seq = model_->isrec_config().seq;
  data::SequenceBatcher batcher(split, seq.batch_size, seq.seq_len);
  model_->SetTraining(true);
  float loss = 0.0f;
  for (Index e = 0; e < config_.epochs_per_refresh; ++e) {
    loss = model_->TrainEpoch(batcher);
  }
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.epoch += static_cast<uint64_t>(config_.epochs_per_refresh);
    stats_.last_loss = loss;
    epoch = stats_.epoch;
  }
  CountOnline("serve.online_refreshes");

  // 3. Versioned artifact: "<base>.v<epoch>" (epochs are monotonic, so
  // names never collide and the history stays replayable).
  const std::string checkpoint =
      config_.checkpoint_base + ".v" + std::to_string(epoch);
  SaveCheckpoint(*model_, checkpoint, epoch);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.last_checkpoint = checkpoint;
  }

  // 4. Publish through the canonical load-validate-swap path. A failure
  // here (corrupt write, rejected probe) leaves the live model as-is.
  if (engine_ != nullptr) {
    const Outcome<uint64_t> published =
        PublishFromCheckpoint(*engine_, checkpoint, config_.load);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!published.ok()) {
      ++stats_.failures;
      stats_.last_error = published.status().ToString();
      CountOnline("serve.online_publish_failures");
      return published.status();
    }
    stats_.last_published_version = published.value();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.refreshes;
  }
  return Status::Ok();
}

OnlineTrainerStats OnlineTrainer::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace isrec::serve

#include "serve/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"

namespace isrec::serve {
namespace {

constexpr uint32_t kMagic = 0x4953434b;  // "ISCK"

// Upper bounds a well-formed checkpoint never exceeds; anything larger
// is a corrupt length prefix and must not reach a vector reserve.
constexpr uint64_t kMaxStringLen = 1u << 20;
constexpr uint64_t kMaxVecLen = 1u << 24;

// -- Little binary (de)serialization helpers ---------------------------

void WriteU32(std::FILE* f, uint32_t v) {
  ISREC_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
void WriteU64(std::FILE* f, uint64_t v) {
  ISREC_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
void WriteI64(std::FILE* f, int64_t v) {
  ISREC_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
void WriteF32(std::FILE* f, float v) {
  ISREC_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
void WriteBool(std::FILE* f, bool v) {
  const uint8_t byte = v ? 1 : 0;
  ISREC_CHECK_EQ(std::fwrite(&byte, sizeof(byte), 1, f), 1u);
}
void WriteStr(std::FILE* f, const std::string& s) {
  WriteU64(f, s.size());
  if (!s.empty()) ISREC_CHECK_EQ(std::fwrite(s.data(), 1, s.size(), f), s.size());
}
void WriteIndexVec(std::FILE* f, const std::vector<Index>& v) {
  WriteU64(f, v.size());
  for (Index x : v) WriteI64(f, x);
}

// Fail-soft reader: the first short read (or implausible length prefix)
// latches ok=false, every later read returns zeros, and Load rejects the
// file in one place — a truncated or corrupt checkpoint must produce a
// typed kModelError, not a CHECK abort.
struct Reader {
  std::FILE* f = nullptr;
  bool ok = true;

  bool Read(void* dst, size_t size, size_t count) {
    if (ok && std::fread(dst, size, count, f) == count) return true;
    ok = false;
    return false;
  }
};

uint32_t ReadU32(Reader& r) {
  uint32_t v = 0;
  r.Read(&v, sizeof(v), 1);
  return v;
}
uint64_t ReadU64(Reader& r) {
  uint64_t v = 0;
  r.Read(&v, sizeof(v), 1);
  return v;
}
int64_t ReadI64(Reader& r) {
  int64_t v = 0;
  r.Read(&v, sizeof(v), 1);
  return v;
}
float ReadF32(Reader& r) {
  float v = 0;
  r.Read(&v, sizeof(v), 1);
  return v;
}
bool ReadBool(Reader& r) {
  uint8_t byte = 0;
  r.Read(&byte, sizeof(byte), 1);
  return byte != 0;
}
std::string ReadStr(Reader& r) {
  const uint64_t len = ReadU64(r);
  if (!r.ok || len > kMaxStringLen) {
    r.ok = false;
    return {};
  }
  std::string s(len, '\0');
  if (len > 0) r.Read(s.data(), 1, len);
  return s;
}
std::vector<Index> ReadIndexVec(Reader& r) {
  const uint64_t n = ReadU64(r);
  if (!r.ok || n > kMaxVecLen) {
    r.ok = false;
    return {};
  }
  std::vector<Index> v(n);
  for (uint64_t i = 0; i < n; ++i) v[i] = ReadI64(r);
  return v;
}

// -- Sections ----------------------------------------------------------

void WriteConfig(std::FILE* f, const core::IsrecConfig& c) {
  const models::SeqModelConfig& s = c.seq;
  WriteI64(f, s.embed_dim);
  WriteI64(f, s.num_layers);
  WriteI64(f, s.num_heads);
  WriteI64(f, s.ffn_dim);
  WriteI64(f, s.seq_len);
  WriteF32(f, s.dropout);
  WriteBool(f, s.use_concepts);
  WriteBool(f, s.use_positions);
  WriteI64(f, s.batch_size);
  WriteI64(f, s.epochs);
  WriteF32(f, s.lr);
  WriteF32(f, s.weight_decay);
  WriteF32(f, s.clip_norm);
  WriteU64(f, s.seed);
  WriteI64(f, c.intent_dim);
  WriteI64(f, c.num_active);
  WriteI64(f, c.gcn_layers);
  WriteF32(f, c.gumbel_tau);
  WriteBool(f, c.use_gnn);
  WriteBool(f, c.use_intent);
  WriteBool(f, c.learn_adjacency);
  WriteBool(f, c.use_residual);
  WriteBool(f, c.identity_gcn_init);
}

core::IsrecConfig ReadConfig(Reader& r) {
  core::IsrecConfig c;
  models::SeqModelConfig& s = c.seq;
  s.embed_dim = ReadI64(r);
  s.num_layers = ReadI64(r);
  s.num_heads = ReadI64(r);
  s.ffn_dim = ReadI64(r);
  s.seq_len = ReadI64(r);
  s.dropout = ReadF32(r);
  s.use_concepts = ReadBool(r);
  s.use_positions = ReadBool(r);
  s.batch_size = ReadI64(r);
  s.epochs = ReadI64(r);
  s.lr = ReadF32(r);
  s.weight_decay = ReadF32(r);
  s.clip_norm = ReadF32(r);
  s.seed = ReadU64(r);
  c.intent_dim = ReadI64(r);
  c.num_active = ReadI64(r);
  c.gcn_layers = ReadI64(r);
  c.gumbel_tau = ReadF32(r);
  c.use_gnn = ReadBool(r);
  c.use_intent = ReadBool(r);
  c.learn_adjacency = ReadBool(r);
  c.use_residual = ReadBool(r);
  c.identity_gcn_init = ReadBool(r);
  return c;
}

// A config deserialized from disk is untrusted: reject dimensions a real
// SaveCheckpoint could never have written before they reach Build.
bool ConfigLooksSane(const core::IsrecConfig& c) {
  constexpr int64_t kMaxDim = 1 << 20;
  auto in_range = [](Index v) { return v > 0 && v <= kMaxDim; };
  return in_range(c.seq.embed_dim) && in_range(c.seq.num_layers) &&
         in_range(c.seq.num_heads) && in_range(c.seq.ffn_dim) &&
         in_range(c.seq.seq_len) && in_range(c.intent_dim) &&
         in_range(c.num_active) && c.gcn_layers >= 0 &&
         c.gcn_layers <= kMaxDim;
}

void WriteVocab(std::FILE* f, const data::Dataset& d) {
  WriteStr(f, d.name);
  WriteI64(f, d.num_users);
  WriteI64(f, d.num_items);
  WriteU64(f, d.item_concepts.size());
  for (const auto& concepts : d.item_concepts) WriteIndexVec(f, concepts);
  WriteI64(f, d.concepts.num_concepts());
  for (Index c = 0; c < d.concepts.num_concepts(); ++c) {
    WriteStr(f, d.concepts.name(c));
  }
  WriteU64(f, d.concepts.edges().size());
  for (const auto& [a, b] : d.concepts.edges()) {
    WriteI64(f, a);
    WriteI64(f, b);
  }
}

std::unique_ptr<data::Dataset> ReadVocab(Reader& r) {
  auto d = std::make_unique<data::Dataset>();
  d->name = ReadStr(r);
  d->num_users = ReadI64(r);
  d->num_items = ReadI64(r);
  const uint64_t num_tagged = ReadU64(r);
  if (!r.ok || static_cast<Index>(num_tagged) != d->num_items ||
      num_tagged > kMaxVecLen) {
    r.ok = false;
    return d;
  }
  d->item_concepts.reserve(num_tagged);
  for (uint64_t i = 0; i < num_tagged && r.ok; ++i) {
    d->item_concepts.push_back(ReadIndexVec(r));
  }
  const Index num_concepts = ReadI64(r);
  if (!r.ok || num_concepts < 0 ||
      static_cast<uint64_t>(num_concepts) > kMaxVecLen) {
    r.ok = false;
    return d;
  }
  std::vector<std::string> names;
  names.reserve(num_concepts);
  for (Index c = 0; c < num_concepts && r.ok; ++c) {
    names.push_back(ReadStr(r));
  }
  const uint64_t num_edges = ReadU64(r);
  if (!r.ok || num_edges > kMaxVecLen) {
    r.ok = false;
    return d;
  }
  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges && r.ok; ++e) {
    const Index a = ReadI64(r);
    const Index b = ReadI64(r);
    if (a < 0 || a >= num_concepts || b < 0 || b >= num_concepts) {
      r.ok = false;
      return d;
    }
    edges.emplace_back(a, b);
  }
  if (!r.ok) return d;
  d->concepts = data::ConceptGraph(num_concepts, std::move(edges),
                                   std::move(names));
  return d;
}

void WritePrior(std::FILE* f, const data::Dataset& d) {
  std::vector<float> counts(static_cast<size_t>(d.num_items), 0.0f);
  for (const auto& sequence : d.sequences) {
    for (Index item : sequence) {
      if (item >= 0 && item < d.num_items) {
        counts[static_cast<size_t>(item)] += 1.0f;
      }
    }
  }
  WriteU64(f, counts.size());
  for (float c : counts) WriteF32(f, c);
}

std::vector<float> ReadPrior(Reader& r, Index num_items) {
  const uint64_t n = ReadU64(r);
  if (!r.ok || static_cast<Index>(n) != num_items || n > kMaxVecLen) {
    r.ok = false;
    return {};
  }
  std::vector<float> prior(n);
  for (uint64_t i = 0; i < n && r.ok; ++i) prior[i] = ReadF32(r);
  return prior;
}

}  // namespace

void SaveCheckpoint(const core::IsrecModel& model, const std::string& path,
                    uint64_t epoch) {
  ISREC_TRACE_SPAN("checkpoint.save");
  const Stopwatch sw;
  const data::Dataset* dataset = model.dataset();
  ISREC_CHECK_MSG(dataset != nullptr,
                  "SaveCheckpoint requires a Fit (or Build) model");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ISREC_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  WriteU32(f, kMagic);
  WriteU32(f, kCheckpointVersion);
  WriteU64(f, epoch);
  WriteConfig(f, model.isrec_config());
  WriteVocab(f, *dataset);
  WritePrior(f, *dataset);
  nn::SaveParameters(model, f);
  std::fclose(f);
  if (obs::MetricsEnabled()) {
    static obs::Histogram& save_ms = obs::GetHistogram(
        "serve.checkpoint_save_ms", obs::LatencyBucketsMs());
    save_ms.Observe(sw.ElapsedMillis());
  }
}

namespace {

Outcome<std::shared_ptr<ServableModel>> LoadImpl(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::ModelError("cannot open checkpoint: " + path);
  }
  // Every early return below closes f exactly once.
  Reader r{f};
  const uint32_t magic = ReadU32(r);
  if (!r.ok || magic != kMagic) {
    std::fclose(f);
    return Status::ModelError("not an ISRec checkpoint (magic mismatch): " +
                              path);
  }
  const uint32_t version = ReadU32(r);
  if (!r.ok || version != kCheckpointVersion) {
    std::fclose(f);
    return Status::ModelError("checkpoint version " +
                              std::to_string(version) + " unsupported (want " +
                              std::to_string(kCheckpointVersion) +
                              "): " + path);
  }
  const uint64_t epoch = ReadU64(r);
  const core::IsrecConfig config = ReadConfig(r);
  if (!r.ok || !ConfigLooksSane(config)) {
    std::fclose(f);
    return Status::ModelError("corrupt checkpoint (bad config section): " +
                              path);
  }

  auto result = std::make_shared<ServableModel>();
  result->epoch = epoch;
  result->dataset = ReadVocab(r);
  if (!r.ok) {
    std::fclose(f);
    return Status::ModelError(
        "corrupt checkpoint (bad vocabulary section): " + path);
  }
  result->popularity = ReadPrior(r, result->dataset->num_items);
  if (!r.ok) {
    std::fclose(f);
    return Status::ModelError(
        "corrupt checkpoint (bad popularity-prior section): " + path);
  }
  result->model = std::make_unique<core::IsrecModel>(config);
  // Build instantiates the exact module tree of the saved model (the
  // config and vocabulary fully determine every parameter shape), so the
  // blob restores by name 1:1.
  result->model->Build(*result->dataset);
  const Status params = nn::TryLoadParameters(*result->model, f);
  std::fclose(f);
  if (!params.ok()) {
    return Status::ModelError("corrupt checkpoint " + path + ": " +
                              params.message());
  }
  return result;
}

}  // namespace

Outcome<std::shared_ptr<ServableModel>> ServableModel::Load(
    const std::string& path, const LoadOptions& options) {
  ISREC_TRACE_SPAN("checkpoint.load");
  const Stopwatch sw;
  Outcome<std::shared_ptr<ServableModel>> result = LoadImpl(path);
  if (result.ok() && options.quantization == Quantization::kInt8) {
    // Quantize the restored item table for int8 catalog scoring. The
    // fp32 model stays intact underneath (the scorer reuses its
    // encoder), so a replica can compare both paths from one load.
    ServableModel& loaded = *result.value();
    loaded.quantized = std::make_unique<QuantizedScorer>(
        *loaded.model, loaded.dataset->num_items);
  }
  if (!result.ok()) {
    ISREC_LOG(Warning) << result.status().message();
  }
  if (obs::MetricsEnabled()) {
    static obs::Histogram& load_ms = obs::GetHistogram(
        "serve.checkpoint_load_ms", obs::LatencyBucketsMs());
    static obs::Counter& failures =
        obs::GetCounter("serve.checkpoint_load_failures");
    load_ms.Observe(sw.ElapsedMillis());
    if (!result.ok()) failures.Add(1);
  }
  return result;
}

std::shared_ptr<ServableModel> ServableModel::Wrap(
    eval::Recommender& scorer, Index num_items,
    std::vector<float> popularity) {
  auto handle = std::make_shared<ServableModel>();
  handle->external_scorer = &scorer;
  handle->external_num_items = num_items;
  handle->popularity = std::move(popularity);
  return handle;
}

}  // namespace isrec::serve

#ifndef ISREC_SERVE_STATS_H_
#define ISREC_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "utils/status.h"

namespace isrec::serve {

/// Immutable snapshot of the engine's serving statistics (the
/// `serve_stats` of the design doc): throughput, latency percentiles, the
/// micro-batch size histogram, and cache effectiveness.
struct ServeStats {
  uint64_t num_requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t num_batches = 0;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_size = 0.0;
  /// histogram[b] = number of micro-batches that scored exactly b
  /// requests (index 0 unused).
  std::vector<uint64_t> batch_size_histogram;

  /// Outcome counters of the v2 API (DESIGN.md §10): every terminal
  /// answer bumps exactly one of these. `ok` can differ from
  /// `num_requests`: a scored request whose deadline expired post-score
  /// has a recorded latency but a kDeadlineExceeded outcome.
  uint64_t ok = 0;                  // kOk terminal answers.
  uint64_t rejected = 0;            // kOverloaded (shed or shutdown).
  uint64_t deadline_exceeded = 0;   // kDeadlineExceeded.
  uint64_t degraded = 0;            // kDegraded fallbacks served.
  uint64_t invalid_arguments = 0;   // kInvalidArgument.
  uint64_t model_errors = 0;        // kModelError.

  /// Instantaneous load signals, filled by ServingEngine::Stats() from
  /// the queue state (a StatsRecorder alone doesn't know them). They
  /// lead the ServeStatsJson rendering as cheap top-level fields — the
  /// router's load poller reads exactly these two from a replica's
  /// /varz without touching the full registry snapshot (field names
  /// pinned by admin_server_test).
  uint64_t queue_depth = 0;  // Requests queued right now.
  bool shedding = false;     // Admission control currently shedding.

  /// Model lifecycle signals, also filled by ServingEngine::Stats():
  /// the live ModelHandle's publish version and training epoch, and how
  /// many hot swaps this engine has performed. The router's prober reads
  /// model_version from /varz to surface fleet version skew.
  uint64_t model_version = 0;
  uint64_t model_epoch = 0;
  uint64_t model_swaps = 0;

  /// Heap-accounting aggregates, filled by ServingEngine::Stats() from
  /// its per-phase AllocationCounter scopes (obs/heap_profiler.h). All
  /// zero unless heap profiling is enabled (--heap-profile /
  /// ISREC_HEAP_PROFILE=1): the counters only tick while the hook is
  /// counting. alloc_requests counts requests answered WHILE profiling
  /// was on — the denominator for allocs/request, which stays honest
  /// when profiling is toggled mid-run.
  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;
  uint64_t alloc_requests = 0;

  double allocs_per_request() const {
    return alloc_requests == 0
               ? 0.0
               : static_cast<double>(alloc_count) / alloc_requests;
  }
  double alloc_bytes_per_request() const {
    return alloc_requests == 0
               ? 0.0
               : static_cast<double>(alloc_bytes) / alloc_requests;
  }

  double cache_hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }

  /// Renders the stats as a two-column utils::Table plus the batch-size
  /// histogram.
  std::string ToTableString() const;
};

/// Canonical JSON rendering of a ServeStats snapshot: fixed key order,
/// fixed float formatting. Every surface that exports serve_stats as
/// JSON (--metrics-json files, the admin server's /varz) embeds THIS
/// string, so the surfaces cannot drift (pinned by the parity test).
std::string ServeStatsJson(const ServeStats& stats);

/// Canonical `outcomes:` line: every StatusCode in declaration order,
/// "outcomes: OK=.. DEADLINE_EXCEEDED=.. OVERLOADED=..
/// INVALID_ARGUMENT=.. MODEL_ERROR=.. DEGRADED=..". The CLI harness
/// prints this verbatim (same parity contract as ServeStatsJson).
std::string OutcomesLine(const ServeStats& stats);

/// Thread-safe accumulator the engine records into; Snapshot() computes
/// the derived numbers (percentiles, qps) on demand.
///
/// Latency storage is a fixed-size uniform reservoir (Vitter's
/// algorithm R, deterministic internal RNG), so memory stays O(1) no
/// matter how long the engine runs; p50/p95/p99 are estimates whose
/// error shrinks with the reservoir size (bounded-tolerance tested in
/// serve_test). When obs::MetricsEnabled(), every record is mirrored
/// into the process-wide registry (serve.requests, serve.cache_hits,
/// serve.cache_misses, serve.batches counters; serve.latency_ms and
/// serve.batch_size histograms), making serve_stats one view of the
/// shared obs data.
class StatsRecorder {
 public:
  /// Latency samples kept for the percentile estimates.
  static constexpr size_t kReservoirCapacity = 4096;

  void RecordRequest(double latency_ms, bool cache_hit);
  void RecordBatch(Index batch_size);

  /// Records one processed micro-batch — its size plus the latency of
  /// every request in it (all cache misses) — under a single lock
  /// acquisition, so the hot path pays one mutex per batch instead of
  /// one per request.
  void RecordProcessedBatch(Index batch_size,
                            const std::vector<double>& latencies_ms);

  /// Counts a terminal outcome code: every code (kOk included) bumps
  /// its dedicated counter and, when obs::MetricsEnabled(), the
  /// matching registry counter (serve.ok, serve.rejected,
  /// serve.deadline_exceeded, serve.degraded, serve.invalid_arguments,
  /// serve.model_errors). The engine calls this exactly once per
  /// terminal answer, so the six counters sum to answered requests.
  void RecordOutcome(StatusCode code);

  /// Clears all recorded samples and restarts the measurement window.
  /// The window start is lazy — it is (re)armed at the NEXT recorded
  /// event, exactly like a freshly constructed recorder — so
  /// `elapsed_seconds`/`qps` measure the busy interval and stay
  /// well-defined for idle-then-burst workloads.
  void Reset();

  ServeStats Snapshot() const;

 private:
  // Mutex held: reservoir-samples latency_ms and mirrors the window
  // start.
  void RecordLatencyLocked(double latency_ms);

  mutable std::mutex mutex_;
  std::vector<double> latency_reservoir_;
  uint64_t num_latencies_ = 0;   // Total recorded, >= reservoir size.
  uint64_t reservoir_rng_ = 0x9e3779b97f4a7c15ull;  // splitmix64 state.
  std::vector<uint64_t> batch_size_histogram_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t num_batches_ = 0;
  uint64_t ok_ = 0;
  uint64_t rejected_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t degraded_ = 0;
  uint64_t invalid_arguments_ = 0;
  uint64_t model_errors_ = 0;
  double start_seconds_ = -1.0;  // Monotonic; set lazily on first record.
};

}  // namespace isrec::serve

#endif  // ISREC_SERVE_STATS_H_

#!/bin/sh
# Runs every benchmark binary, capturing combined output. Cheap benches
# first so partial runs still cover most artifacts.
set -u
out=/root/repo/bench_output.txt
: > "$out"
# bench_ops also runs the thread-count sweep plus the kernel-ISA sweep
# (--kernels: scalar vs SIMD vs int8) and regenerates
# BENCH_tensor_ops.json (exits nonzero if any parallel kernel result is
# not bitwise identical to the serial run, if an EXACT-class SIMD
# kernel differs from scalar, or if the serving GEMM misses 2x).
echo "##### build/bench/bench_ops (thread + kernel sweep) #####" >> "$out"
build/bench/bench_ops --kernels --sweep-out /root/repo/BENCH_tensor_ops.json \
  >> "$out" 2>/dev/null
echo "" >> "$out"
for b in build/bench/bench_table3_datasets build/bench/bench_table4_concepts \
         build/bench/bench_fig2_showcase \
         build/bench/bench_fig3_dprime build/bench/bench_fig4_lambda \
         build/bench/bench_design_ablations build/bench/bench_complexity \
         build/bench/bench_table6_seqlen build/bench/bench_table5_ablation \
         build/bench/bench_table2 build/bench/bench_serving; do
  echo "##### $b #####" >> "$out"
  "$b" >> "$out" 2>/dev/null
  echo "" >> "$out"
done
# Sharded tier: router + 4 replicas vs a single replica over the same
# HTTP workload, plus a drain-under-load pass; regenerates
# BENCH_router.json and exits nonzero on any dropped request or an
# uncertified drain.
echo "##### build/bench/bench_serving --router #####" >> "$out"
build/bench/bench_serving --router --out /root/repo/BENCH_router.json \
  >> "$out" 2>/dev/null
echo "" >> "$out"
echo "ALL BENCHES DONE" >> "$out"
